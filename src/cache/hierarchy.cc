#include "cache/hierarchy.hh"

#include <algorithm>
#include <sstream>

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"
#include "obs/ledger.hh"
#include "obs/trace.hh"

namespace nvo
{

Hierarchy::Hierarchy(const Params &params, BackingStore &backing_store,
                     DramModel &dram_model, RunStats &run_stats)
    : p(params), backing(backing_store), dram(dram_model),
      stats(run_stats)
{
    nvo_assert(p.numCores > 0 && p.coresPerVd > 0);
    nvo_assert(p.numCores % p.coresPerVd == 0,
               "cores must divide evenly into VDs");
    numVds_ = p.numCores / p.coresPerVd;
    nvo_assert(numVds_ <= 32, "directory sharer mask is 32 bits");
    nvo_assert(p.numLlcSlices > 0);

    for (unsigned c = 0; c < p.numCores; ++c)
        l1s.push_back(std::make_unique<L1Cache>(p.l1, c));
    for (unsigned v = 0; v < numVds_; ++v)
        l2s.push_back(std::make_unique<L2Cache>(p.l2, v, p.coresPerVd));
    for (unsigned s = 0; s < p.numLlcSlices; ++s)
        slices.push_back(std::make_unique<LlcSlice>(p.llc, s));
}

EpochWide
Hierarchy::curEpoch(unsigned vd) const
{
    if (vctrl)
        return vctrl->vdEpoch(vd);
    if (epochFn)
        return epochFn(vd);
    return 0;
}

unsigned
Hierarchy::sliceOf(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr >> lineBytesLog2) %
                                 slices.size());
}

void
Hierarchy::readCurrent(Addr line_addr, LineData &out) const
{
    backing.readLine(line_addr, out);
}

Cycle
Hierarchy::observeRv(unsigned vd, EpochWide rv, Cycle now)
{
    if (!vctrl)
        return 0;
    return vctrl->observeRemoteVersion(vd, rv, now);
}

Cycle
Hierarchy::emitVersion(unsigned vd, Addr line_addr, EpochWide oid,
                       SeqNo seq, const LineData *sealed,
                       EvictReason why, Cycle now)
{
    if (!vctrl)
        return 0;
    ++stats.evictReason[static_cast<std::size_t>(why)];
    NVO_TRACE(Cache, CacheWriteBack, obs::trackVd(vd), now, line_addr,
              static_cast<std::uint64_t>(why));
    noteTraffic(vd, numVds_ + sliceOf(line_addr),
                (why == EvictReason::TagWalk ||
                 why == EvictReason::StoreEvict ||
                 why == EvictReason::EpochFlush)
                    ? XTraffic::Snapshot
                    : XTraffic::Eviction);
    Cycle stall;
    if (sealed) {
        stall = vctrl->acceptVersion(vd, line_addr, oid, seq, *sealed,
                                     why, now);
    } else {
        // Live version: the content is the architectural image, so
        // the recency label must be the line's latest committed
        // seqno (cached per-slot seqnos can lag same-epoch stores
        // that hit the L1).
        LineData live;
        readCurrent(line_addr, live);
        stall = vctrl->acceptVersion(vd, line_addr, oid,
                                     backing.lineSeq(line_addr), live,
                                     why, now);
    }
    // Back-pressure is charged to the operation that triggered the
    // eviction, whichever internal path it came through.
    opStall += stall;
    return stall;
}

void
Hierarchy::llcEvictVictim(CacheLine &victim, Cycle now)
{
    if (victim.dirty)
        dram.write(victim.addr, lineBytes, now);
    victim.reset();
}

void
Hierarchy::llcInsert(Addr line_addr, EpochWide oid, SeqNo seq, bool dirty,
                     Cycle now)
{
    LlcSlice &sl = *slices[sliceOf(line_addr)];
    CacheLine *line = sl.array().lookup(line_addr);
    if (!line) {
        line = sl.array().allocSlot(line_addr);
        if (line->valid())
            llcEvictVictim(*line, now);
        line->reset();
        line->addr = line_addr;
        line->state = CohState::S;
        // Bump replacement state for the fresh line.
        sl.array().lookup(line_addr);
    }
    // OIDs only move forward at the LLC (Sec. IV-A4).
    if (oid >= line->oid) {
        line->oid = oid;
        line->seq = std::max(line->seq, seq);
    }
    line->dirty = line->dirty || dirty;
}

Cycle
Hierarchy::l2AcceptVersion(unsigned vd, Addr line_addr, EpochWide oid,
                           SeqNo seq, std::unique_ptr<LineData> sealed,
                           EvictReason why, bool to_llc, Cycle now)
{
    L2Cache &l2c = *l2s[vd];
    CacheLine *line = l2c.array().probe(line_addr);
    nvo_assert(line != nullptr, "inclusion: L1 version with no L2 line");

    Cycle stall = 0;
    if (vctrl && line->dirty && line->oid < oid) {
        // The L2 holds an older immutable version; evict it before
        // overwriting (paper Fig. 4c). Sealed by construction: a
        // newer version existed above it.
        nvo_assert(line->sealed(),
                   "older L2 version displaced while live");
        if (to_llc)
            llcInsert(line_addr, line->oid, line->seq, true, now);
        stall += emitVersion(vd, line_addr, line->oid, line->seq,
                             line->sealedData.get(), why, now);
    }
    line->dirty = true;
    line->oid = oid;
    line->seq = seq;
    line->sealedData = std::move(sealed);
    line->state = CohState::M;
    return stall;
}

Cycle
Hierarchy::handleL1Victim(unsigned core, CacheLine &victim, Cycle now)
{
    unsigned vd = vdOfCore(core);
    L2Cache &l2c = *l2s[vd];
    CacheLine *l2_line = l2c.array().probe(victim.addr);
    nvo_assert(l2_line != nullptr, "inclusion violated on L1 eviction");
    L2Cache::removeSharer(*l2_line, l2c.localIdx(core));

    Cycle stall = 0;
    if (victim.state == CohState::M && victim.dirty) {
        // PUTX: the (live, newest) dirty version moves to the L2.
        stall = l2AcceptVersion(vd, victim.addr, victim.oid, victim.seq,
                                nullptr, EvictReason::Capacity, true,
                                now);
    }
    victim.reset();
    return stall;
}

Cycle
Hierarchy::handleL2Victim(unsigned vd, CacheLine &victim, Cycle now)
{
    Addr addr = victim.addr;
    Cycle stall = 0;
    bool l1_version_written = false;
    EpochWide newest_oid = victim.oid;

    // Back-invalidate local L1 copies (inclusive L2), merging any
    // dirty L1 version into the write back.
    for (unsigned i = 0; i < p.coresPerVd; ++i) {
        if (!L2Cache::hasSharer(victim, i))
            continue;
        unsigned core = vd * p.coresPerVd + i;
        CacheLine *l1_line = l1s[core]->array().probe(addr);
        nvo_assert(l1_line != nullptr, "sharer bit without L1 line");
        if (l1_line->oid > newest_oid)
            newest_oid = l1_line->oid;
        if (l1_line->state == CohState::M && l1_line->dirty) {
            if (vctrl && victim.dirty && victim.oid < l1_line->oid) {
                // Two distinct versions leave the VD: the sealed old
                // L2 version and the newer live L1 version.
                nvo_assert(victim.sealed());
                llcInsert(addr, victim.oid, victim.seq, true, now);
                stall += emitVersion(vd, addr, victim.oid, victim.seq,
                                     victim.sealedData.get(),
                                     EvictReason::Capacity, now);
            }
            llcInsert(addr, l1_line->oid, l1_line->seq, true, now);
            stall += emitVersion(vd, addr, l1_line->oid, l1_line->seq,
                                 nullptr, EvictReason::Capacity, now);
            l1_version_written = true;
            newest_oid = l1_line->oid;
        }
        l1_line->reset();
    }

    if (!l1_version_written) {
        // Non-inclusive LLC allocates on L2 eviction regardless of
        // dirtiness (victim-cache behaviour); only dirty versions
        // additionally flow to the OMC. The OID carried outward is
        // the newest across the L2 slot and any (clean) L1 copies.
        llcInsert(addr, newest_oid, victim.seq, victim.dirty, now);
        if (victim.dirty) {
            stall += emitVersion(vd, addr, victim.oid, victim.seq,
                                 victim.sealed()
                                     ? victim.sealedData.get()
                                     : nullptr,
                                 EvictReason::Capacity, now);
        }
    }

    // Release directory presence.
    LlcSlice &sl = *slices[sliceOf(addr)];
    if (DirEntry *e = sl.dirProbe(addr)) {
        e->removeSharer(vd);
        if (e->ownerVd == static_cast<int>(vd))
            e->ownerVd = -1;
    }
    victim.reset();
    return stall;
}

CacheLine *
Hierarchy::fillL1(unsigned core, Addr addr, CohState st, EpochWide oid,
                  SeqNo seq, bool dirty, Cycle now)
{
    CacheArray &arr = l1s[core]->array();
    CacheLine *slot = arr.allocSlot(addr);
    if (slot->valid())
        handleL1Victim(core, *slot, now);
    slot->reset();
    slot->addr = addr;
    slot->state = st;
    slot->oid = oid;
    slot->seq = seq;
    slot->dirty = dirty;
    arr.lookup(addr);   // bump LRU
    return slot;
}

CacheLine *
Hierarchy::fillL2(unsigned vd, Addr addr, CohState st, EpochWide oid,
                  SeqNo seq, bool dirty, Cycle now)
{
    CacheArray &arr = l2s[vd]->array();
    CacheLine *slot = arr.allocSlot(addr);
    if (slot->valid())
        handleL2Victim(vd, *slot, now);
    slot->reset();
    slot->addr = addr;
    slot->state = st;
    slot->oid = oid;
    slot->seq = seq;
    slot->dirty = dirty;
    arr.lookup(addr);
    return slot;
}

Cycle
Hierarchy::pullL1Version(unsigned vd, unsigned core, CacheLine *l1_line,
                         CohState new_l1_state, EvictReason why,
                         Cycle now)
{
    bool to_llc = why != EvictReason::Coherence;
    Cycle stall = l2AcceptVersion(vd, l1_line->addr, l1_line->oid,
                                  l1_line->seq, nullptr, why, to_llc,
                                  now);
    l1_line->dirty = false;
    if (new_l1_state == CohState::I) {
        L2Cache &l2c = *l2s[vd];
        CacheLine *l2_line = l2c.array().probe(l1_line->addr);
        nvo_assert(l2_line != nullptr);
        L2Cache::removeSharer(*l2_line, l2c.localIdx(core));
        l1_line->reset();
    } else {
        l1_line->state = new_l1_state;
    }
    return stall;
}

Hierarchy::InvResult
Hierarchy::invalidateVd(unsigned vd, Addr addr, Cycle now)
{
    L2Cache &l2c = *l2s[vd];
    CacheLine *l2_line = l2c.array().probe(addr);
    nvo_assert(l2_line != nullptr, "directory sharer without L2 line");

    InvResult result;

    // Locate a dirty L1 copy (at most one can be in M).
    CacheLine *l1_m = nullptr;
    for (unsigned i = 0; i < p.coresPerVd; ++i) {
        if (!L2Cache::hasSharer(*l2_line, i))
            continue;
        unsigned core = vd * p.coresPerVd + i;
        CacheLine *l1_line = l1s[core]->array().probe(addr);
        nvo_assert(l1_line != nullptr);
        if (l1_line->state == CohState::M && l1_line->dirty) {
            nvo_assert(l1_m == nullptr, "two M copies in one VD");
            l1_m = l1_line;
        }
    }

    if (l1_m) {
        // Optimization 2 (Fig. 6): the newest dirty version transfers
        // cache-to-cache; no OMC write for it. The older sealed L2
        // version goes to the OMC only (optimization 1).
        result.c2cDirty = true;
        result.oid = l1_m->oid;
        result.seq = l1_m->seq;
        if (vctrl && l2_line->dirty && l2_line->oid < l1_m->oid) {
            nvo_assert(l2_line->sealed());
            emitVersion(vd, addr, l2_line->oid, l2_line->seq,
                        l2_line->sealedData.get(),
                        EvictReason::Coherence, now);
        }
    } else if (l2_line->dirty) {
        nvo_assert(!l2_line->sealed(),
                   "sealed L2 version cannot be the newest");
        result.c2cDirty = true;
        result.oid = l2_line->oid;
        result.seq = l2_line->seq;
    }

    // Invalidate all L1 copies and the L2 line.
    for (unsigned i = 0; i < p.coresPerVd; ++i) {
        if (!L2Cache::hasSharer(*l2_line, i))
            continue;
        unsigned core = vd * p.coresPerVd + i;
        CacheLine *l1_line = l1s[core]->array().probe(addr);
        if (l1_line)
            l1_line->reset();
    }
    l2_line->reset();
    return result;
}

EpochWide
Hierarchy::downgradeVd(unsigned vd, Addr addr, Cycle now)
{
    L2Cache &l2c = *l2s[vd];
    CacheLine *l2_line = l2c.array().probe(addr);
    nvo_assert(l2_line != nullptr, "directory owner without L2 line");

    // Pull a dirty L1 copy down into the L2 first (Fig. 5a/5b).
    for (unsigned i = 0; i < p.coresPerVd; ++i) {
        if (!L2Cache::hasSharer(*l2_line, i))
            continue;
        unsigned core = vd * p.coresPerVd + i;
        CacheLine *l1_line = l1s[core]->array().probe(addr);
        nvo_assert(l1_line != nullptr);
        if (l1_line->state == CohState::M && l1_line->dirty) {
            pullL1Version(vd, core, l1_line, CohState::S,
                          EvictReason::Coherence, now);
        } else {
            l1_line->state = CohState::S;
        }
    }

    // Write the newest version back to LLC (current image) and OMC
    // (persistence), then everyone ends in S (Fig. 5c).
    if (l2_line->dirty) {
        nvo_assert(!vctrl || !l2_line->sealed(),
                   "sealed L2 version cannot be the newest");
        llcInsert(addr, l2_line->oid, l2_line->seq, true, now);
        emitVersion(vd, addr, l2_line->oid, l2_line->seq, nullptr,
                    EvictReason::Coherence, now);
        l2_line->dirty = false;
        l2_line->sealedData.reset();
    } else if (!vctrl) {
        // Plain MESI: clean E downgrade, nothing to write back.
    }
    l2_line->state = CohState::S;
    return l2_line->oid;
}

CacheLine *
Hierarchy::fetchIntoL2(unsigned vd, Addr addr, bool exclusive, Cycle now,
                       Cycle &lat)
{
    unsigned slice_idx = sliceOf(addr);
    LlcSlice &sl = *slices[slice_idx];
    if (p.noc)
        lat += p.noc->vdToSlice(vd, slice_idx) + p.llcArrayLatency;
    else
        lat += sl.latency();
    DirEntry &e = sl.dir(addr);

    EpochWide rv = 0;
    SeqNo rseq = 0;
    bool c2c_dirty = false;
    bool have_rv = false;

    CacheLine *mine = l2s[vd]->array().probe(addr);

    // Snoop a remote owner.
    if (e.ownerVd >= 0 && e.ownerVd != static_cast<int>(vd)) {
        unsigned owner = static_cast<unsigned>(e.ownerVd);
        noteTraffic(vd, owner, XTraffic::Coherence);
        lat += p.noc ? 2 * p.noc->sliceToVd(slice_idx, owner)
                     : p.remoteSnoopLatency;
        if (exclusive) {
            InvResult r = invalidateVd(owner, addr, now);
            e.removeSharer(owner);
            e.ownerVd = -1;
            if (r.c2cDirty) {
                c2c_dirty = true;
                rv = r.oid;
                rseq = r.seq;
                have_rv = true;
            }
        } else {
            rv = downgradeVd(owner, addr, now);
            rseq = backing.lineSeq(addr);
            have_rv = true;
            e.ownerVd = -1;   // owner stays a sharer
        }
    }

    // Exclusive requests invalidate every other sharer VD.
    if (exclusive) {
        bool snooped = false;
        Cycle worst_snoop = 0;
        for (unsigned v = 0; v < numVds_; ++v) {
            if (v == vd || !e.isSharer(v))
                continue;
            noteTraffic(vd, v, XTraffic::Coherence);
            invalidateVd(v, addr, now);
            e.removeSharer(v);
            snooped = true;
            if (p.noc)
                worst_snoop =
                    std::max(worst_snoop,
                             2 * p.noc->sliceToVd(slice_idx, v));
        }
        if (snooped)
            lat += p.noc ? worst_snoop : p.remoteSnoopLatency;
    }

    // Data source: c2c transfer, LLC, or DRAM.
    if (!c2c_dirty) {
        CacheLine *llc_line = sl.array().lookup(addr);
        if (llc_line) {
            ++stats.llcHits;
            if (!have_rv) {
                rv = llc_line->oid;
                rseq = llc_line->seq;
            }
        } else {
            ++stats.llcMisses;
            lat += dram.read(addr, lineBytes, now + lat);
            if (!have_rv) {
                rv = backing.lineOid(addr);
                rseq = backing.lineSeq(addr);
            }
        }
    }

    // The most recent epoch that updated the line is preserved
    // end-to-end (LLC tags, DRAM ECC bits — Sec. IV-A4); clean copies
    // inside other VDs may carry a newer OID than the LLC's stale
    // entry, so the *observed* RV resolves against the memory tag.
    // With super-block OID tracking that tag may be inflated by a
    // neighbouring line, which is safe for the Lamport observation
    // but must never re-label a transferred dirty version — the fill
    // keeps the data source's own tag.
    EpochWide observed_rv = rv;
    if (vctrl)
        observed_rv = std::max(rv, backing.lineOid(addr));

    // Lamport-clock epoch synchronization on the response (Sec. IV-B2).
    lat += observeRv(vd, observed_rv, now + lat);

    // Install in our L2.
    e.addSharer(vd);
    CohState st;
    if (exclusive) {
        st = CohState::E;
        e.ownerVd = static_cast<int>(vd);
    } else if (e.sharerVds == (1u << vd)) {
        st = CohState::E;   // sole sharer: grant exclusive
        e.ownerVd = static_cast<int>(vd);
    } else {
        st = CohState::S;
    }

    if (mine) {
        // Upgrade in place (line was S here).
        mine->state = st;
        return mine;
    }
    return fillL2(vd, addr, c2c_dirty ? CohState::M : st, rv, rseq,
                  c2c_dirty, now);
}

Cycle
Hierarchy::load(unsigned core, Addr addr, Cycle now)
{
    addr = lineAlign(addr);
    unsigned vd = vdOfCore(core);
    opStall = 0;
    Cycle lat = l1s[core]->latency();

    CacheLine *l1_line = l1s[core]->array().lookup(addr);
    if (l1_line) {
        ++stats.l1Hits;
        return lat;
    }
    ++stats.l1Misses;

    L2Cache &l2c = *l2s[vd];
    lat += l2c.latency();
    CacheLine *l2_line = l2c.array().lookup(addr);
    if (!l2_line) {
        ++stats.l2Misses;
        l2_line = fetchIntoL2(vd, addr, false, now, lat);
    } else {
        ++stats.l2Hits;
    }

    // A sibling L1 holding the line in M must downgrade first
    // (intra-VD downgrade, Fig. 8).
    for (unsigned i = 0; i < p.coresPerVd; ++i) {
        if (!L2Cache::hasSharer(*l2_line, i))
            continue;
        unsigned sib = vd * p.coresPerVd + i;
        if (sib == core)
            continue;
        CacheLine *sl1 = l1s[sib]->array().probe(addr);
        nvo_assert(sl1 != nullptr);
        if (sl1->state == CohState::M && sl1->dirty)
            pullL1Version(vd, sib, sl1, CohState::S,
                          EvictReason::Capacity, now);
    }

    // Grant: exclusive when this VD owns the line and no other local
    // L1 shares it; shared otherwise.
    CohState grant =
        (writable(l2_line->state) && l2_line->sharers == 0)
            ? CohState::E
            : CohState::S;
    fillL1(core, addr, grant, l2_line->oid, l2_line->seq, false, now);
    // fillL1 may displace a victim whose PUTX lands in this same L2
    // set; re-probe to be safe.
    l2_line = l2c.array().probe(addr);
    nvo_assert(l2_line != nullptr);
    L2Cache::addSharer(*l2_line, l2c.localIdx(core));
    return lat + opStall;
}

Cycle
Hierarchy::store(unsigned core, Addr addr, const void *data,
                 unsigned size, Cycle now)
{
    Addr line_addr = lineAlign(addr);
    unsigned vd = vdOfCore(core);
    L2Cache &l2c = *l2s[vd];
    opStall = 0;
    Cycle lat = l1s[core]->latency();

    CacheLine *l1_line = l1s[core]->array().lookup(line_addr);
    bool l1_writable = l1_line && writable(l1_line->state);
    if (l1_writable) {
        ++stats.l1Hits;
    } else {
        ++stats.l1Misses;
        lat += l2c.latency();
        CacheLine *l2_line = l2c.array().lookup(line_addr);
        bool local = l2_line && writable(l2_line->state);
        if (local) {
            ++stats.l2Hits;
        } else {
            if (l2_line)
                ++stats.l2Hits;   // present but needs an upgrade
            else
                ++stats.l2Misses;
            l2_line = fetchIntoL2(vd, line_addr, true, now, lat);
        }

        // Invalidate sibling L1 copies (intra-VD GETX, Fig. 7).
        for (unsigned i = 0; i < p.coresPerVd; ++i) {
            if (!L2Cache::hasSharer(*l2_line, i))
                continue;
            unsigned sib = vd * p.coresPerVd + i;
            if (sib == core)
                continue;
            CacheLine *sl1 = l1s[sib]->array().probe(line_addr);
            nvo_assert(sl1 != nullptr);
            if (sl1->state == CohState::M && sl1->dirty) {
                pullL1Version(vd, sib, sl1, CohState::I,
                              EvictReason::Capacity, now);
            } else {
                L2Cache::removeSharer(*l2_line, i);
                sl1->reset();
            }
        }

        if (l1_line) {
            // Upgrade the local S copy in place.
            l1_line->state = CohState::E;
        } else {
            // Fill the L1; a dirty c2c-transferred version moves up
            // into the L1 (it is the store's target).
            bool move_dirty = l2_line->dirty && !l2_line->sealed();
            l1_line = fillL1(core, line_addr,
                             move_dirty ? CohState::M : CohState::E,
                             l2_line->oid, l2_line->seq, move_dirty,
                             now);
            l2_line = l2c.array().probe(line_addr);
            nvo_assert(l2_line != nullptr);
            if (move_dirty)
                l2_line->dirty = false;
        }
        L2Cache::addSharer(*l2_line, l2c.localIdx(core));
        l2_line->state = CohState::M;
    }

    // --- Version access protocol at the L1 (paper Sec. IV-A1) ---
    EpochWide cur = curEpoch(vd);
    if (vctrl) {
        nvo_assert(l1_line->oid <= cur,
                   "line from the future after Lamport sync");
        if (l1_line->dirty && l1_line->oid != cur) {
            // Store-eviction (Fig. 4): seal the immutable version and
            // push it to the L2 without invalidating the L1 line.
            NVO_TRACE(Cache, StoreEvict, obs::trackVd(vd), now,
                      line_addr, l1_line->oid);
            NVO_LEDGER(seal(vd, line_addr, l1_line->oid, now));
            auto sealed = std::make_unique<LineData>();
            readCurrent(line_addr, *sealed);
            l2AcceptVersion(vd, line_addr, l1_line->oid,
                            l1_line->seq, std::move(sealed),
                            EvictReason::StoreEvict, true, now);
        } else if (!l1_line->dirty) {
            // A clean L1 store may leave an older live dirty version
            // in the L2 below; seal its content in place before the
            // line changes (models the L2 holding its own data copy).
            CacheLine *l2_line = l2c.array().probe(line_addr);
            nvo_assert(l2_line != nullptr);
            if (l2_line->dirty && !l2_line->sealed() &&
                l2_line->oid < cur) {
                NVO_TRACE(Cache, VersionSeal, obs::trackVd(vd), now,
                          line_addr, l2_line->oid);
                NVO_LEDGER(seal(vd, line_addr, l2_line->oid, now));
                auto sealed = std::make_unique<LineData>();
                readCurrent(line_addr, *sealed);
                l2_line->sealedData = std::move(sealed);
            }
        }
    }

    // --- Commit ---
    SeqNo seq = ++seqCounter;
    if (data) {
        backing.applyPatch(addr, data, size);
    } else {
        // Synthetic content: stamp the seqno so content always
        // changes and verification digests are meaningful.
        std::uint64_t stamp = seq;
        Addr at = std::min(addr & ~static_cast<Addr>(7),
                           line_addr + lineBytes - 8);
        backing.applyPatch(at, &stamp, 8);
    }
    backing.setLineMeta(line_addr, cur, seq);
    l1_line->state = CohState::M;
    l1_line->dirty = true;
    l1_line->oid = cur;
    l1_line->seq = seq;

    // The L2 copy keeps ownership (the VD holds dirty data above).
    CacheLine *l2_line = l2c.array().probe(line_addr);
    nvo_assert(l2_line != nullptr);
    l2_line->state = CohState::M;

    if (wtracker) {
        LineData cur_data;
        backing.readLine(line_addr, cur_data);
        wtracker->record(line_addr, seq, cur, cur_data.digest());
    }
    return lat + opStall;
}

Hierarchy::WalkScan
Hierarchy::tagWalkScan(unsigned vd)
{
    WalkScan scan;
    EpochWide cur = curEpoch(vd);
    scan.minVer = cur;
    L2Cache &l2c = *l2s[vd];

    l2c.array().forEachValid([&](CacheLine &line) {
        ++scan.linesScanned;
        Addr addr = line.addr;
        bool any_dirty_left = false;

        // Check L1 copies first: they hold the newest versions.
        for (unsigned i = 0; i < p.coresPerVd; ++i) {
            if (!L2Cache::hasSharer(line, i))
                continue;
            unsigned core = vd * p.coresPerVd + i;
            CacheLine *l1_line = l1s[core]->array().probe(addr);
            nvo_assert(l1_line != nullptr);
            if (l1_line->state == CohState::M && l1_line->dirty) {
                if (l1_line->oid < cur) {
                    scan.minVer = std::min(scan.minVer, l1_line->oid);
                    WalkVersion v;
                    v.addr = addr;
                    v.oid = l1_line->oid;
                    v.seq = backing.lineSeq(addr);
                    readCurrent(addr, v.content);
                    scan.versions.push_back(std::move(v));
                    l1_line->dirty = false;
                    l1_line->state = CohState::E;
                } else {
                    any_dirty_left = true;
                }
            }
        }

        if (line.dirty) {
            if (line.oid < cur) {
                scan.minVer = std::min(scan.minVer, line.oid);
                WalkVersion v;
                v.addr = addr;
                v.oid = line.oid;
                v.seq = line.sealed() ? line.seq
                                      : backing.lineSeq(addr);
                if (line.sealed())
                    v.content = *line.sealedData;
                else
                    readCurrent(addr, v.content);
                scan.versions.push_back(std::move(v));
                line.dirty = false;
                line.sealedData.reset();
            } else {
                any_dirty_left = true;
            }
        }

        // The (now clean) L2 slot keeps naming the newest epoch that
        // wrote this line, so later write backs carry the right OID
        // outward. Applied only after the slot's own dirty version
        // (if any) was collected under its own tag.
        if (!line.dirty) {
            for (unsigned i = 0; i < p.coresPerVd; ++i) {
                if (!L2Cache::hasSharer(line, i))
                    continue;
                unsigned core = vd * p.coresPerVd + i;
                CacheLine *l1_line = l1s[core]->array().probe(addr);
                if (l1_line && l1_line->oid > line.oid) {
                    line.oid = l1_line->oid;
                    line.seq = l1_line->seq;
                }
            }
        }

        if (!any_dirty_left && line.state == CohState::M)
            line.state = CohState::E;
    });

    stats.tagWalkLinesScanned += scan.linesScanned;
    return scan;
}

void
Hierarchy::flushAll(Cycle now)
{
    // Shutdown flush: back-pressure here is not an op's to pay.
    struct StallGuard
    {
        Cycle &ref;
        ~StallGuard() { ref = 0; }
    } guard{opStall};
    for (unsigned vd = 0; vd < numVds_; ++vd) {
        L2Cache &l2c = *l2s[vd];
        l2c.array().forEachValid([&](CacheLine &line) {
            Addr addr = line.addr;
            bool l1_written = false;
            for (unsigned i = 0; i < p.coresPerVd; ++i) {
                if (!L2Cache::hasSharer(line, i))
                    continue;
                unsigned core = vd * p.coresPerVd + i;
                CacheLine *l1_line = l1s[core]->array().probe(addr);
                if (!l1_line)
                    continue;
                if (l1_line->state == CohState::M && l1_line->dirty) {
                    if (vctrl && line.dirty && line.oid < l1_line->oid) {
                        emitVersion(vd, addr, line.oid, line.seq,
                                    line.sealedData.get(),
                                    EvictReason::EpochFlush, now);
                        line.dirty = false;
                        line.sealedData.reset();
                    }
                    llcInsert(addr, l1_line->oid, l1_line->seq, true,
                              now);
                    emitVersion(vd, addr, l1_line->oid, l1_line->seq,
                                nullptr, EvictReason::EpochFlush, now);
                    l1_line->dirty = false;
                    l1_line->state = CohState::E;
                    l1_written = true;
                }
            }
            if (line.dirty) {
                if (!l1_written)
                    llcInsert(addr, line.oid, line.seq, true, now);
                emitVersion(vd, addr, line.oid, line.seq,
                            line.sealed() ? line.sealedData.get()
                                          : nullptr,
                            EvictReason::EpochFlush, now);
                line.dirty = false;
                line.sealedData.reset();
            }
        });
    }
    // LLC dirty lines flush to DRAM (timing only).
    for (auto &sl : slices) {
        sl->array().forEachValid([&](CacheLine &line) {
            if (line.dirty) {
                dram.write(line.addr, lineBytes, now);
                line.dirty = false;
            }
        });
    }
}

const CacheLine *
Hierarchy::l1Line(unsigned core, Addr addr) const
{
    return l1s[core]->array().probe(lineAlign(addr));
}

const CacheLine *
Hierarchy::l2Line(unsigned vd, Addr addr) const
{
    return l2s[vd]->array().probe(lineAlign(addr));
}

const DirEntry *
Hierarchy::dirEntry(Addr addr) const
{
    Addr line_addr = lineAlign(addr);
    return const_cast<Hierarchy *>(this)
        ->slices[sliceOf(line_addr)]
        ->dirProbe(line_addr);
}

std::string
Hierarchy::checkInvariants(bool quiescent) const
{
    std::ostringstream err;
    auto fail = [&err](const std::string &msg) {
        if (err.tellp() == 0)
            err << msg;
    };

    // 1. Inclusion and sharer-bit consistency.
    for (unsigned core = 0; core < p.numCores; ++core) {
        unsigned vd = core / p.coresPerVd;
        const_cast<CacheArray &>(l1s[core]->array())
            .forEachValid([&](CacheLine &line) {
                const CacheLine *l2_line =
                    l2s[vd]->array().probe(line.addr);
                if (!l2_line) {
                    fail("L1 line without inclusive L2 line");
                    return;
                }
                if (!L2Cache::hasSharer(*l2_line,
                                        l2s[vd]->localIdx(core)))
                    fail("L1 line without L2 sharer bit");
                if (line.sealed())
                    fail("sealed payload in an L1");
                // A store hit on a writable L1 line commits without
                // consulting sibling copies, so a stale clean S copy
                // can lag the L2 tag until it is invalidated or
                // evicted; the relation only holds at quiescent
                // points.
                if (quiescent && line.oid < l2_line->oid)
                    fail("L1 version older than L2 version");
            });
    }

    // 2. Sharer bits point at real L1 lines; single M copy per VD.
    for (unsigned vd = 0; vd < numVds_; ++vd) {
        const_cast<CacheArray &>(l2s[vd]->array())
            .forEachValid([&](CacheLine &line) {
                unsigned m_copies = 0;
                for (unsigned i = 0; i < p.coresPerVd; ++i) {
                    if (!L2Cache::hasSharer(line, i))
                        continue;
                    unsigned core = vd * p.coresPerVd + i;
                    const CacheLine *l1_line =
                        l1s[core]->array().probe(line.addr);
                    if (!l1_line) {
                        fail("L2 sharer bit without L1 line");
                        continue;
                    }
                    if (l1_line->state == CohState::M)
                        ++m_copies;
                }
                if (m_copies > 1)
                    fail("two M copies in one VD");
                if (line.sealed() && !line.dirty)
                    fail("sealed but clean L2 line");
                // Directory must list this VD as a sharer.
                const DirEntry *e =
                    const_cast<Hierarchy *>(this)
                        ->slices[sliceOf(line.addr)]
                        ->dirProbe(line.addr);
                if (!e || !e->isSharer(vd))
                    fail("L2 line not listed in the directory");
                if (writable(line.state) && e &&
                    e->ownerVd != static_cast<int>(vd))
                    fail("E/M line without directory ownership");
            });
    }

    // 3. Directory: owner exclusivity.
    for (const auto &sl : slices) {
        // Directory owned by slice; validated through VD loops above.
        (void)sl;
    }

    return err.str();
}

void
Hierarchy::audit() const
{
    if (!audit::enabled)
        return;

    // Per-level structural sweeps.
    for (const auto &l1 : l1s)
        l1->audit();
    for (const auto &l2 : l2s)
        l2->audit();
    for (const auto &sl : slices)
        sl->audit();

    // Cross-level MESI structure (inclusion, sharer bits, directory).
    std::string err = checkInvariants(false);
    NVO_AUDIT(err.empty(), err);

    // Version-protocol epoch rules (Sec. IV-A/IV-B).
    EpochWide max_epoch = 0;
    for (unsigned vd = 0; vd < numVds_; ++vd) {
        EpochWide cur = curEpoch(vd);
        max_epoch = std::max(max_epoch, cur);

        for (unsigned i = 0; i < p.coresPerVd; ++i) {
            l1s[vd * p.coresPerVd + i]->array().forEachValid(
                [cur](const CacheLine &line) {
                    NVO_AUDIT(!line.dirty || line.oid <= cur,
                              "dirty L1 OID ahead of its VD's epoch");
                });
        }

        l2s[vd]->array().forEachValid([&](const CacheLine &line) {
            NVO_AUDIT(!line.dirty || line.oid <= cur,
                      "dirty L2 OID ahead of its VD's epoch");
            if (!line.sealed())
                return;
            // A sealed payload exists only because a newer version
            // was created above it, so its epoch is strictly past.
            NVO_AUDIT(line.oid < cur,
                      "sealed version from the current epoch");
            if (wtracker) {
                // Immutability: the payload must still be the
                // architectural content of its epoch — the content
                // after the last store with epoch <= oid (DESIGN.md
                // Sec. 2 premise: per-line epochs are non-decreasing).
                auto expect =
                    wtracker->expectedDigest(line.addr, line.oid);
                NVO_AUDIT(expect.has_value(),
                          "sealed version with no recorded store");
                NVO_AUDIT(!expect ||
                              *expect == line.sealedData->digest(),
                          "sealed version content mutated");
            }
        });
    }

    // LLC OIDs only move forward (Sec. IV-A4) and never past the
    // leading VD epoch.
    for (const auto &sl : slices) {
        sl->array().forEachValid([max_epoch](const CacheLine &line) {
            NVO_AUDIT(line.oid <= max_epoch,
                      "LLC OID ahead of every VD epoch");
        });
    }
}

} // namespace nvo
