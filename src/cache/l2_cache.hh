/**
 * @file
 * Per-VD shared, inclusive L2 cache. Besides the tag/data array it
 * carries the intra-VD directory: each line's `sharers` field is a
 * bitmask of the local L1s holding a copy.
 */

#ifndef NVO_CACHE_L2_CACHE_HH
#define NVO_CACHE_L2_CACHE_HH

#include <vector>

#include "cache/cache_array.hh"
#include "common/types.hh"

namespace nvo
{

class L2Cache
{
  public:
    struct Params
    {
        std::uint64_t sizeBytes = 256 * 1024;
        unsigned ways = 8;
        Cycle latency = 8;
    };

    L2Cache(const Params &params, unsigned vd_id, unsigned cores_per_vd);

    CacheArray &array() { return arr; }
    const CacheArray &array() const { return arr; }
    Cycle latency() const { return lat; }
    unsigned vdId() const { return vd; }
    unsigned coresPerVd() const { return localCores; }

    /** Local L1 index (0..coresPerVd-1) for a global core id. */
    unsigned localIdx(unsigned core_id) const;

    static void addSharer(CacheLine &line, unsigned local_idx);
    static void removeSharer(CacheLine &line, unsigned local_idx);
    static bool hasSharer(const CacheLine &line, unsigned local_idx);

    /** Local L1 indices currently sharing @p line. */
    std::vector<unsigned> sharerList(const CacheLine &line) const;

    /**
     * Invariant sweep (NVO_AUDIT): array structure is sound, sharer
     * masks stay within the VD's local L1 population, and sealed
     * versions are dirty (a sealed payload is an immutable old-epoch
     * version awaiting write-back, Fig. 4).
     */
    void audit() const;

  private:
    CacheArray arr;
    Cycle lat;
    unsigned vd;
    unsigned localCores;
};

} // namespace nvo

#endif // NVO_CACHE_L2_CACHE_HH
