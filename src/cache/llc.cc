#include "cache/llc.hh"

namespace nvo
{

LlcSlice::LlcSlice(const Params &params, unsigned slice_id)
    : arr(params.sliceBytes, params.ways), lat(params.latency),
      slice(slice_id)
{
}

DirEntry &
LlcSlice::dir(Addr line_addr)
{
    return directory[line_addr];
}

DirEntry *
LlcSlice::dirProbe(Addr line_addr)
{
    auto it = directory.find(line_addr);
    return it == directory.end() ? nullptr : &it->second;
}

void
LlcSlice::dirErase(Addr line_addr)
{
    directory.erase(line_addr);
}

} // namespace nvo
