#include "cache/llc.hh"

#include "common/audit.hh"
#include "common/bitutil.hh"

namespace nvo
{

LlcSlice::LlcSlice(const Params &params, unsigned slice_id)
    : arr(params.sliceBytes, params.ways), lat(params.latency),
      slice(slice_id)
{
}

DirEntry &
LlcSlice::dir(Addr line_addr)
{
    return directory[line_addr];
}

DirEntry *
LlcSlice::dirProbe(Addr line_addr)
{
    auto it = directory.find(line_addr);
    return it == directory.end() ? nullptr : &it->second;
}

void
LlcSlice::dirErase(Addr line_addr)
{
    directory.erase(line_addr);
}

void
LlcSlice::forEachDirEntry(
    const std::function<void(Addr, const DirEntry &)> &fn) const
{
    for (const auto &kv : directory)
        fn(kv.first, kv.second);
}

void
LlcSlice::audit() const
{
    if (!audit::enabled)
        return;
    arr.audit();
    arr.forEachValid([](const CacheLine &line) {
        NVO_AUDIT(line.sharers == 0,
                  "L2-private sharer bits on an LLC line");
        NVO_AUDIT(!line.sealed(), "sealed payload in the LLC");
    });
    for (const auto &kv : directory) {
        NVO_AUDIT(lineAlign(kv.first) == kv.first,
                  "directory keyed by an unaligned address");
        const DirEntry &e = kv.second;
        NVO_AUDIT(e.ownerVd < 0 ||
                      e.isSharer(static_cast<unsigned>(e.ownerVd)),
                  "directory owner VD is not a sharer");
    }
}

} // namespace nvo
