/**
 * @file
 * 2D-mesh network-on-chip latency model (opt-in).
 *
 * The paper's scalability argument rests on distributed LLC slices
 * and OMCs (Sec. II-D, Fig. 2): with a mesh interconnect, the cost of
 * reaching a slice or snooping a remote VD depends on placement, not
 * a single constant. When enabled (`sys.noc=true`), the hierarchy
 * charges XY-routed hop latency between the requesting VD's tile, the
 * home LLC slice, and any snooped VD, instead of the flat
 * `llc.lat` / `sys.snoop_lat` constants.
 *
 * Topology: VD tiles fill an (approximately square) mesh row-major;
 * LLC slices sit at evenly spaced tiles. One tile per VD keeps the
 * model independent of cores-per-VD.
 */

#ifndef NVO_CACHE_NOC_HH
#define NVO_CACHE_NOC_HH

#include "common/types.hh"

namespace nvo
{

class MeshNoc
{
  public:
    struct Params
    {
        unsigned numVds = 8;
        unsigned numSlices = 4;
        /** Per-hop router + link latency (cycles). */
        Cycle hopLatency = 3;
        /** Fixed injection/ejection overhead per traversal. */
        Cycle portLatency = 2;
    };

    explicit MeshNoc(const Params &params);

    unsigned width() const { return cols; }
    unsigned height() const { return rows; }

    /** Tile coordinates of a VD (row-major placement). */
    void vdTile(unsigned vd, unsigned &x, unsigned &y) const;

    /** Tile coordinates of an LLC slice (evenly spread). */
    void sliceTile(unsigned slice, unsigned &x, unsigned &y) const;

    /** Manhattan-distance hop count between two tiles. */
    unsigned hops(unsigned x0, unsigned y0, unsigned x1,
                  unsigned y1) const;

    /** Latency of VD -> home slice traversal (one way). */
    Cycle vdToSlice(unsigned vd, unsigned slice) const;

    /** Latency of slice -> snooped VD traversal (one way). */
    Cycle sliceToVd(unsigned slice, unsigned vd) const;

    /** Worst-case one-way traversal latency in this mesh. */
    Cycle diameterLatency() const;

  private:
    Cycle traversal(unsigned hop_count) const;

    Params p;
    unsigned cols;
    unsigned rows;
};

} // namespace nvo

#endif // NVO_CACHE_NOC_HH
