#include "cache/cache_array.hh"

#include "common/audit.hh"
#include "common/bitutil.hh"
#include "common/log.hh"

namespace nvo
{

const char *
toString(CohState s)
{
    switch (s) {
      case CohState::I: return "I";
      case CohState::S: return "S";
      case CohState::E: return "E";
      case CohState::M: return "M";
      default: return "?";
    }
}

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned ways)
    : ways_(ways)
{
    nvo_assert(ways > 0);
    nvo_assert(size_bytes % (static_cast<std::uint64_t>(ways) *
                             lineBytes) == 0,
               "cache size must be a multiple of ways * line size");
    std::uint64_t num_sets = size_bytes / ways / lineBytes;
    nvo_assert(isPow2(num_sets), "number of sets must be a power of 2");
    sets = static_cast<unsigned>(num_sets);
    lines.resize(static_cast<std::size_t>(sets) * ways_);
}

unsigned
CacheArray::setOf(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr >> lineBytesLog2) &
                                 (sets - 1));
}

CacheLine *
CacheArray::lookup(Addr line_addr)
{
    CacheLine *line = probe(line_addr);
    if (line)
        line->lru = ++lruClock;
    return line;
}

CacheLine *
CacheArray::probe(Addr line_addr)
{
    nvo_assert(lineAlign(line_addr) == line_addr);
    CacheLine *base = &lines[static_cast<std::size_t>(setOf(line_addr)) *
                             ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid() && base[w].addr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
CacheArray::probe(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->probe(line_addr);
}

CacheLine *
CacheArray::allocSlot(Addr line_addr)
{
    nvo_assert(probe(line_addr) == nullptr,
               "allocSlot on an already-present address");
    CacheLine *base = &lines[static_cast<std::size_t>(setOf(line_addr)) *
                             ways_];
    CacheLine *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid())
            return &base[w];
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    return victim;
}

void
CacheArray::invalidate(CacheLine *line)
{
    nvo_assert(line != nullptr);
    line->reset();
}

unsigned
CacheArray::numValid() const
{
    unsigned count = 0;
    for (const auto &line : lines)
        if (line.valid())
            ++count;
    return count;
}

CacheLine *
CacheArray::setBase(unsigned set_idx)
{
    nvo_assert(set_idx < sets);
    return &lines[static_cast<std::size_t>(set_idx) * ways_];
}

void
CacheArray::forEachValid(const std::function<void(CacheLine &)> &fn)
{
    for (auto &line : lines)
        if (line.valid())
            fn(line);
}

void
CacheArray::forEachValid(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &line : lines)
        if (line.valid())
            fn(line);
}

void
CacheArray::audit() const
{
    if (!audit::enabled)
        return;
    for (unsigned set = 0; set < sets; ++set) {
        const CacheLine *base =
            &lines[static_cast<std::size_t>(set) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const CacheLine &line = base[w];
            if (!line.valid()) {
                NVO_AUDIT(line.state == CohState::I &&
                              !line.dirty && !line.sealed(),
                          "invalid slot carries residual state");
                continue;
            }
            NVO_AUDIT(lineAlign(line.addr) == line.addr,
                      "cached address not line-aligned");
            NVO_AUDIT(setOf(line.addr) == set,
                      "line stored in the wrong set");
            NVO_AUDIT(line.state != CohState::I,
                      "valid line in coherence state I");
            NVO_AUDIT(line.lru <= lruClock,
                      "replacement stamp ahead of the LRU clock");
            for (unsigned w2 = w + 1; w2 < ways_; ++w2)
                NVO_AUDIT(!base[w2].valid() ||
                              base[w2].addr != line.addr,
                          "address mapped by two ways of one set");
        }
    }
}

} // namespace nvo
