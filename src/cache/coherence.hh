/**
 * @file
 * Coherence protocol types shared by all cache levels.
 *
 * The protocol is directory-based MESI (paper Sec. IV baseline).
 * NVOverlay does not add states or transitions; it only adds OID tag
 * checks and extra evictions around existing actions, which is exactly
 * how the hierarchy here is structured.
 */

#ifndef NVO_CACHE_COHERENCE_HH
#define NVO_CACHE_COHERENCE_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "mem/backing_store.hh"

namespace nvo
{

enum class CohState : std::uint8_t
{
    I = 0,  ///< invalid
    S,      ///< shared, clean
    E,      ///< exclusive, clean
    M       ///< modified (dirty version)
};

const char *toString(CohState s);

/** True for states that allow a store to complete locally. */
inline bool
writable(CohState s)
{
    return s == CohState::E || s == CohState::M;
}

/**
 * One cache line. Data payloads are attached only to *sealed*
 * versions: a dirty line whose content is no longer the architectural
 * current value because a newer version exists above it (created by
 * NVOverlay store-eviction). Live dirty lines read their content from
 * the backing store at write-back time.
 */
struct CacheLine
{
    Addr addr = invalidAddr;      ///< line-aligned address; invalid slot
    CohState state = CohState::I;
    bool dirty = false;
    EpochWide oid = 0;            ///< epoch of last write (version tag)
    SeqNo seq = 0;                ///< last store seqno (verification)
    std::uint64_t lru = 0;        ///< replacement stamp
    std::uint16_t sharers = 0;    ///< L2 only: bitmask of local L1s
    std::unique_ptr<LineData> sealedData;   ///< sealed version payload

    bool valid() const { return addr != invalidAddr; }
    bool sealed() const { return sealedData != nullptr; }

    void
    reset()
    {
        addr = invalidAddr;
        state = CohState::I;
        dirty = false;
        oid = 0;
        seq = 0;
        sharers = 0;
        sealedData.reset();
    }
};

} // namespace nvo

#endif // NVO_CACHE_COHERENCE_HH
