/**
 * @file
 * The full cache hierarchy: per-core L1s, per-VD inclusive L2s, a
 * distributed non-inclusive LLC with a directory, and the glue to the
 * DRAM working memory.
 *
 * All coherence transactions are modelled as atomic state transitions
 * with additive latency charging (zsim-style). The baseline protocol
 * is directory MESI; when a VersionCtrl is installed the hierarchy
 * additionally runs NVOverlay's version access protocol
 * (paper Sec. IV-A):
 *
 *  - every line carries an OID (epoch of last write);
 *  - a store hitting a dirty line from an earlier epoch performs a
 *    *store-eviction*: the immutable version is sealed (its payload
 *    captured) and pushed to the L2, then the store completes in
 *    place under the current epoch (Fig. 4);
 *  - an L1 PUTX landing on an older dirty L2 version first evicts
 *    that version to LLC + OMC (Fig. 4c);
 *  - external downgrades write the newest version back to LLC + OMC
 *    and old sealed L2 versions to the OMC only (Fig. 5, optimization
 *    1 of Sec. IV-A3);
 *  - external invalidations hand the newest dirty version directly to
 *    the requestor cache-to-cache without any OMC write (Fig. 6,
 *    optimization 2);
 *  - every coherence response carries the line OID (RV); the
 *    receiving VD Lamport-advances its epoch when RV is ahead
 *    (Sec. IV-B2);
 *  - a tag-walk scan collects and downgrades all dirty versions older
 *    than the VD's epoch so the walker can drain them to the OMC in
 *    the background (Sec. IV-C).
 */

#ifndef NVO_CACHE_HIERARCHY_HH
#define NVO_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "cache/llc.hh"
#include "cache/noc.hh"
#include "cache/version_ctrl.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"
#include "mem/write_tracker.hh"

namespace nvo
{

class Hierarchy
{
  public:
    struct Params
    {
        unsigned numCores = 16;
        unsigned coresPerVd = 2;
        unsigned numLlcSlices = 4;
        L1Cache::Params l1;
        L2Cache::Params l2;
        LlcSlice::Params llc;
        /** Extra latency for a request forwarded to a remote VD. */
        Cycle remoteSnoopLatency = 40;
        /**
         * Optional mesh NoC: when set, slice access and snoop
         * latencies are hop-based (XY routing) instead of the flat
         * constants above; `llc.latency` then only covers the array
         * access (noc traversal charged separately).
         */
        const MeshNoc *noc = nullptr;
        Cycle llcArrayLatency = 10;
    };

    Hierarchy(const Params &params, BackingStore &backing,
              DramModel &dram, RunStats &run_stats);

    /** Traffic classes reported to a TrafficSink. */
    enum class XTraffic : std::uint8_t
    {
        Coherence,   ///< directory snoop / invalidation across VDs
        Eviction,    ///< capacity/coherence version drain to an OMC
        Snapshot,    ///< epoch-driven version drain (walks, seals)
    };

    /**
     * Observer for cross-domain traffic. Domains are flat ids:
     * 0..numVds-1 name the VDs, numVds..numVds+numSlices-1 name the
     * LLC-slice/OMC partitions. The shard engine (src/par/) installs
     * one to account which protocol transitions cross a shard
     * boundary; note() is always invoked by the thread currently
     * executing the hierarchy (under the shard engine, the token
     * holder), never concurrently.
     */
    class TrafficSink
    {
      public:
        virtual ~TrafficSink() = default;
        virtual void note(unsigned from_domain, unsigned to_domain,
                          XTraffic kind) = 0;
    };

    void setTrafficSink(TrafficSink *sink) { xsink = sink; }

    /** Install NVOverlay version control (enables the CST protocol). */
    void setVersionCtrl(VersionCtrl *ctrl) { vctrl = ctrl; }

    /**
     * Epoch provider for non-versioned runs (baselines tag commits
     * with the scheme's global epoch). Versioned runs use the
     * VersionCtrl's per-VD epochs instead.
     */
    void setEpochSource(std::function<EpochWide(unsigned)> fn)
    {
        epochFn = std::move(fn);
    }

    /** Optional write-history recorder for verification. */
    void setWriteTracker(WriteTracker *tracker) { wtracker = tracker; }

    /** Process a load by @p core. Returns total latency. */
    Cycle load(unsigned core, Addr addr, Cycle now);

    /**
     * Process and commit a store by @p core. @p data/@p size describe
     * the stored bytes (data may be null: a synthetic 8-byte pattern
     * derived from the store seqno is written instead, so content
     * always changes). Returns total latency including any
     * version-protocol stalls.
     */
    Cycle store(unsigned core, Addr addr, const void *data,
                unsigned size, Cycle now);

    /**
     * Atomic tag-walk scan of VD @p vd: collect every dirty version
     * older than the VD's current epoch (L1s and L2), downgrade the
     * lines to clean, and return the collected versions together with
     * min-ver (smallest dirty OID encountered, initialized to the
     * VD's epoch). The caller (the tag walker) drains the collected
     * versions to the OMC over time.
     */
    struct WalkVersion
    {
        Addr addr;
        EpochWide oid;
        SeqNo seq;
        LineData content;
    };

    struct WalkScan
    {
        EpochWide minVer;
        std::vector<WalkVersion> versions;
        std::uint64_t linesScanned = 0;
    };

    WalkScan tagWalkScan(unsigned vd);

    /**
     * Flush every dirty line in the hierarchy to the memory image and
     * (in versioned mode) to the OMC. Used at clean shutdown and by
     * tests.
     */
    void flushAll(Cycle now);

    /**
     * Verify structural invariants; returns an empty string when all
     * hold, else a description of the first violation. Exercised by
     * property tests after random traffic. Pass @p quiescent = false
     * when called mid-run: a store hit on a writable L1 line commits
     * without consulting stale clean sibling copies, so the
     * L1-tag-vs-L2-tag relation only holds once traffic stops.
     */
    std::string checkInvariants(bool quiescent = true) const;

    /**
     * Invariant sweep (NVO_AUDIT): per-level array audits, the
     * structural checks of checkInvariants(), and the version
     * protocol's epoch rules — dirty OIDs never run ahead of their
     * VD's epoch (Sec. IV-B), sealed versions are strictly older than
     * the current epoch, and (when a WriteTracker is installed)
     * sealed payloads still match the architectural content of their
     * epoch, i.e. sealed versions are immutable (Fig. 4).
     */
    void audit() const;

    // --- Introspection (tests, examples) ---
    unsigned numCores() const { return p.numCores; }
    unsigned numVds() const { return numVds_; }
    unsigned vdOfCore(unsigned core) const { return core / p.coresPerVd; }
    const CacheLine *l1Line(unsigned core, Addr addr) const;
    const CacheLine *l2Line(unsigned vd, Addr addr) const;
    const DirEntry *dirEntry(Addr addr) const;
    L2Cache &l2(unsigned vd) { return *l2s[vd]; }
    L1Cache &l1(unsigned core) { return *l1s[core]; }
    LlcSlice &llcSlice(unsigned i) { return *slices[i]; }
    unsigned numSlices() const
    {
        return static_cast<unsigned>(slices.size());
    }

  private:
    /** Epoch of VD @p vd under the active mode. */
    EpochWide curEpoch(unsigned vd) const;

    bool versioned() const { return vctrl != nullptr; }

    unsigned sliceOf(Addr line_addr) const;

    /** Read a line's current architectural content. */
    void readCurrent(Addr line_addr, LineData &out) const;

    /** Send a version to the OMC (versioned mode only). */
    Cycle emitVersion(unsigned vd, Addr line_addr, EpochWide oid,
                      SeqNo seq, const LineData *sealed,
                      EvictReason why, Cycle now);

    /**
     * Insert/refresh a line in the LLC slice as part of a write back;
     * may evict an LLC victim to DRAM. Returns DRAM latency charged
     * (usually ignored: write backs are posted).
     */
    void llcInsert(Addr line_addr, EpochWide oid, SeqNo seq, bool dirty,
                   Cycle now);

    /** LLC capacity eviction: dirty victims go to DRAM. */
    void llcEvictVictim(CacheLine &victim, Cycle now);

    /**
     * L2 accepts a version arriving from an L1 (PUTX or
     * store-eviction). Implements the OID<RV old-version eviction
     * rule. @p sealed, when non-null, is the sealed payload moving
     * down. @p to_llc controls whether a displaced old L2 version
     * also goes to the LLC (true for PUTX; false under coherence
     * optimization 1).
     */
    Cycle l2AcceptVersion(unsigned vd, Addr line_addr, EpochWide oid,
                          SeqNo seq, std::unique_ptr<LineData> sealed,
                          EvictReason why, bool to_llc, Cycle now);

    /** Handle an L1 victim (capacity replacement). */
    Cycle handleL1Victim(unsigned core, CacheLine &victim, Cycle now);

    /** Handle an L2 victim (capacity replacement). */
    Cycle handleL2Victim(unsigned vd, CacheLine &victim, Cycle now);

    /** Fill @p addr into L1 of @p core with state @p st. */
    CacheLine *fillL1(unsigned core, Addr addr, CohState st,
                      EpochWide oid, SeqNo seq, bool dirty, Cycle now);

    /** Fill @p addr into the L2 of @p vd (runs victim handling). */
    CacheLine *fillL2(unsigned vd, Addr addr, CohState st, EpochWide oid,
                      SeqNo seq, bool dirty, Cycle now);

    /**
     * Ensure the line is present in VD @p vd's L2 with (at least) the
     * requested permission, fetching through the directory when
     * needed. Returns the response version (RV) and accumulates
     * latency into @p lat.
     */
    CacheLine *fetchIntoL2(unsigned vd, Addr addr, bool exclusive,
                           Cycle now, Cycle &lat);

    struct InvResult
    {
        bool c2cDirty = false;   ///< newest dirty version transferred
        EpochWide oid = 0;
        SeqNo seq = 0;
    };

    /** External invalidation of @p addr in VD @p vd (DIR-GETX). */
    InvResult invalidateVd(unsigned vd, Addr addr, Cycle now);

    /** External downgrade of @p addr in VD @p vd (DIR-GETS). */
    EpochWide downgradeVd(unsigned vd, Addr addr, Cycle now);

    /**
     * Pull a dirty L1 version down into the L2 (intra-VD PUTX used by
     * downgrades and sibling sharing). The L1 line transitions to
     * @p new_l1_state.
     */
    Cycle pullL1Version(unsigned vd, unsigned core, CacheLine *l1_line,
                        CohState new_l1_state, EvictReason why,
                        Cycle now);

    /** Lamport observation helper (no-op for baselines). */
    Cycle observeRv(unsigned vd, EpochWide rv, Cycle now);

    /** Report a cross-domain transition to the installed sink. */
    void
    noteTraffic(unsigned from_domain, unsigned to_domain,
                XTraffic kind) const
    {
        if (xsink)
            xsink->note(from_domain, to_domain, kind);
    }

    Params p;
    unsigned numVds_;
    /** NVM back-pressure accumulated by the current operation's
     *  version emissions (charged to the requesting core). */
    Cycle opStall = 0;
    BackingStore &backing;
    DramModel &dram;
    RunStats &stats;
    VersionCtrl *vctrl = nullptr;
    TrafficSink *xsink = nullptr;
    std::function<EpochWide(unsigned)> epochFn;
    WriteTracker *wtracker = nullptr;
    SeqNo seqCounter = 0;

    std::vector<std::unique_ptr<L1Cache>> l1s;
    std::vector<std::unique_ptr<L2Cache>> l2s;
    std::vector<std::unique_ptr<LlcSlice>> slices;
};

} // namespace nvo

#endif // NVO_CACHE_HIERARCHY_HH
