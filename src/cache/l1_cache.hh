/**
 * @file
 * Private per-core L1 data cache. A thin wrapper over CacheArray; the
 * coherence protocol itself is orchestrated by Hierarchy.
 */

#ifndef NVO_CACHE_L1_CACHE_HH
#define NVO_CACHE_L1_CACHE_HH

#include "cache/cache_array.hh"
#include "common/types.hh"

namespace nvo
{

class L1Cache
{
  public:
    struct Params
    {
        std::uint64_t sizeBytes = 32 * 1024;
        unsigned ways = 8;
        Cycle latency = 4;
    };

    L1Cache(const Params &params, unsigned core_id);

    CacheArray &array() { return arr; }
    const CacheArray &array() const { return arr; }
    Cycle latency() const { return lat; }
    unsigned coreId() const { return core; }

    /**
     * Invariant sweep (NVO_AUDIT): array structure is sound, no L1
     * line carries a sealed payload (sealing happens on the way down
     * to the L2, Fig. 4), and the L2-only sharer mask is unused.
     */
    void audit() const;

  private:
    CacheArray arr;
    Cycle lat;
    unsigned core;
};

} // namespace nvo

#endif // NVO_CACHE_L1_CACHE_HH
