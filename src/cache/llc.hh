/**
 * @file
 * One slice of the distributed, non-inclusive LLC plus its share of
 * the global coherence directory.
 *
 * Non-inclusive: a line may be cached above without being present in
 * the slice's data array, so the directory is kept in a separate
 * (idealized full-map) structure rather than in the LLC tags
 * (paper Sec. II-D motivates exactly this organization).
 */

#ifndef NVO_CACHE_LLC_HH
#define NVO_CACHE_LLC_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "cache/cache_array.hh"
#include "common/types.hh"

namespace nvo
{

/** Directory entry: which VDs cache the line and who owns it. */
struct DirEntry
{
    std::uint32_t sharerVds = 0;   ///< bitmask of VDs with a copy
    int ownerVd = -1;              ///< VD holding E/M, or -1

    bool hasSharers() const { return sharerVds != 0; }
    bool
    isSharer(unsigned vd) const
    {
        return (sharerVds >> vd) & 1u;
    }
    void addSharer(unsigned vd) { sharerVds |= 1u << vd; }
    void removeSharer(unsigned vd) { sharerVds &= ~(1u << vd); }
};

class LlcSlice
{
  public:
    struct Params
    {
        std::uint64_t sliceBytes = 8 * 1024 * 1024;
        unsigned ways = 16;
        Cycle latency = 30;
    };

    LlcSlice(const Params &params, unsigned slice_id);

    CacheArray &array() { return arr; }
    Cycle latency() const { return lat; }
    unsigned sliceId() const { return slice; }

    /** Directory entry for @p line_addr, created on first touch. */
    DirEntry &dir(Addr line_addr);

    /** Directory entry if it exists, else nullptr. */
    DirEntry *dirProbe(Addr line_addr);

    /** Remove an empty directory entry. */
    void dirErase(Addr line_addr);

    std::size_t dirSize() const { return directory.size(); }

    /** Visit every directory entry: fn(line_addr, entry). */
    void forEachDirEntry(
        const std::function<void(Addr, const DirEntry &)> &fn) const;

    /**
     * Invariant sweep (NVO_AUDIT): array structure is sound, no LLC
     * line carries L2-private sharer bits or a sealed payload, and
     * directory owners are listed among their entry's sharers.
     */
    void audit() const;

  private:
    CacheArray arr;
    Cycle lat;
    unsigned slice;
    std::unordered_map<Addr, DirEntry> directory;
};

} // namespace nvo

#endif // NVO_CACHE_LLC_HH
