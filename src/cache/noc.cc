#include "cache/noc.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace nvo
{

MeshNoc::MeshNoc(const Params &params) : p(params)
{
    nvo_assert(p.numVds > 0 && p.numSlices > 0);
    cols = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(p.numVds))));
    rows = (p.numVds + cols - 1) / cols;
}

void
MeshNoc::vdTile(unsigned vd, unsigned &x, unsigned &y) const
{
    nvo_assert(vd < p.numVds);
    x = vd % cols;
    y = vd / cols;
}

void
MeshNoc::sliceTile(unsigned slice, unsigned &x, unsigned &y) const
{
    nvo_assert(slice < p.numSlices);
    // Spread slices evenly over the VD tiles they serve.
    unsigned tile = static_cast<unsigned>(
        (static_cast<std::uint64_t>(slice) * p.numVds) / p.numSlices);
    x = tile % cols;
    y = tile / cols;
}

unsigned
MeshNoc::hops(unsigned x0, unsigned y0, unsigned x1, unsigned y1) const
{
    unsigned dx = x0 > x1 ? x0 - x1 : x1 - x0;
    unsigned dy = y0 > y1 ? y0 - y1 : y1 - y0;
    return dx + dy;
}

Cycle
MeshNoc::traversal(unsigned hop_count) const
{
    return p.portLatency + static_cast<Cycle>(hop_count) * p.hopLatency;
}

Cycle
MeshNoc::vdToSlice(unsigned vd, unsigned slice) const
{
    unsigned vx, vy, sx, sy;
    vdTile(vd, vx, vy);
    sliceTile(slice, sx, sy);
    return traversal(hops(vx, vy, sx, sy));
}

Cycle
MeshNoc::sliceToVd(unsigned slice, unsigned vd) const
{
    return vdToSlice(vd, slice);
}

Cycle
MeshNoc::diameterLatency() const
{
    return traversal((cols - 1) + (rows - 1));
}

} // namespace nvo
