#include "harness/experiment.hh"

#include <chrono>
#include <cstdlib>

#include "harness/system.hh"

namespace nvo
{

Config
defaultConfig()
{
    Config cfg;
    // Table II: 16 cores, 4-way superscalar @ 3 GHz; 32 KB L1-D;
    // 256 KB L2; 32 MB shared LLC; DDR3-1333 x4; NVDIMM 16 banks,
    // 133 ns write latency.
    cfg.set("sys.cores", std::uint64_t(16));
    cfg.set("sys.cores_per_vd", std::uint64_t(2));
    cfg.set("sys.llc_slices", std::uint64_t(4));
    cfg.set("sys.issue_width", std::uint64_t(4));
    cfg.set("l1.kb", std::uint64_t(32));
    cfg.set("l2.kb", std::uint64_t(256));
    cfg.set("llc.mb", std::uint64_t(32));
    // 16 banks per NVDIMM (Table II) x 4 memory controllers.
    cfg.set("nvm.banks", std::uint64_t(64));
    cfg.set("nvm.write_occupancy", std::uint64_t(400));   // 133 ns
    // Scaled-down default run length (the paper runs 1.6 B instrs;
    // see DESIGN.md on scaling). Overridable via NVO_OPS.
    cfg.set("wl.ops", std::uint64_t(4096));
    cfg.set("epoch.stores_global", std::uint64_t(1) << 20);
    return cfg;
}

void
applyOverrides(Config &cfg, const std::vector<std::string> &args)
{
    struct EnvKey
    {
        const char *env;
        const char *key;
    };
    static const EnvKey keys[] = {
        {"NVO_OPS", "wl.ops"},
        {"NVO_EPOCH_STORES", "epoch.stores_global"},
        {"NVO_THREADS", "sys.cores"},
        {"NVO_SEED", "rng.seed"},
    };
    for (const auto &k : keys) {
        if (const char *v = std::getenv(k.env))
            cfg.set(k.key, std::string(v));
    }
    for (const auto &arg : args)
        cfg.parseArg(arg);
}

ExpResult
runExperiment(const Config &cfg, const std::string &scheme,
              const std::string &workload)
{
    ExpResult result;
    result.scheme = scheme;
    result.workload = workload;

    auto start = std::chrono::steady_clock::now();
    System sys(cfg, scheme, workload);
    sys.run();
    auto end = std::chrono::steady_clock::now();

    result.stats = sys.stats();
    result.hostSeconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace nvo
