#include "harness/system.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "mem/persist_domain.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "obs/ledger.hh"
#include "obs/trace.hh"
#include "policy/engine.hh"

namespace nvo
{

System::System(const Config &cfg, const std::string &scheme_name,
               const std::string &workload_name)
    : cfg_(cfg)
{
    // The workload thread count always matches the core count.
    cfg_.set("wl.threads", cfg_.getU64("sys.cores", 16));
    wl = makeWorkload(workload_name, cfg_);
    build(scheme_name);
}

System::System(const Config &cfg, const std::string &scheme_name,
               std::unique_ptr<WorkloadBase> workload)
    : cfg_(cfg), wl(std::move(workload))
{
    build(scheme_name);
}

System::~System() = default;

void
System::build(const std::string &scheme_name)
{
    unsigned num_cores =
        static_cast<unsigned>(cfg_.getU64("sys.cores", 16));
    unsigned cores_per_vd =
        static_cast<unsigned>(cfg_.getU64("sys.cores_per_vd", 2));
    unsigned num_vds = num_cores / cores_per_vd;
    nvo_assert(wl->params().numThreads == num_cores,
               "workload threads must match core count");

    quantum = cfg_.getU64("sys.quantum", 2000);

    // The metric registry must be (re)configured before any component
    // constructs: registration happens in constructors (master table,
    // page pool, shard engine, ...), and configure() zeroes every
    // value and drops stale per-build gauges. Unlike the tracer and
    // ledger, which only export, this ordering is load-bearing.
    obs::metricRegistry().configure(cfg_);
    exporter_.configure(cfg_);

    // Device models.
    DramModel::Params dp;
    dp.channels =
        static_cast<unsigned>(cfg_.getU64("dram.channels", 4));
    dp.accessLatency = cfg_.getU64("dram.lat", 150);
    dram = std::make_unique<DramModel>(dp, &stats_);

    NvmModel::Params np;
    np.banks = static_cast<unsigned>(cfg_.getU64("nvm.banks", 64));
    np.writeOccupancy = cfg_.getU64("nvm.write_occupancy", 400);
    np.readLatency = cfg_.getU64("nvm.read_lat", 510);
    np.bufferBytes = cfg_.getU64("nvm.buffer_mb", 32) * 1024 * 1024;
    // Endurance model: has()-gated like par.shards so runs without
    // the key keep their resolved-config dump (and stats JSON)
    // byte-identical to before the wear model existed.
    if (cfg_.has("nvm.wear.enabled") &&
        cfg_.getBool("nvm.wear.enabled", false)) {
        np.wearEnabled = true;
        np.wearRegionBytes =
            cfg_.getU64("nvm.wear.region_kb", 4) * 1024;
    }
    nvm_ = std::make_unique<NvmModel>(np, &stats_);
    // Crash campaigns arm the persist domain so durable mutations
    // journal undo records until the next barrier; plain performance
    // runs leave it disarmed (one branch per staged call site).
    if (cfg_.getBool("persist.armed", false))
        nvm_->persist().arm();

    // Hierarchy (Table II geometry by default).
    Hierarchy::Params hp;
    hp.numCores = num_cores;
    hp.coresPerVd = cores_per_vd;
    hp.numLlcSlices =
        static_cast<unsigned>(cfg_.getU64("sys.llc_slices", 4));
    hp.l1.sizeBytes = cfg_.getU64("l1.kb", 32) * 1024;
    hp.l1.ways = static_cast<unsigned>(cfg_.getU64("l1.ways", 8));
    hp.l1.latency = cfg_.getU64("l1.lat", 4);
    hp.l2.sizeBytes = cfg_.getU64("l2.kb", 256) * 1024;
    hp.l2.ways = static_cast<unsigned>(cfg_.getU64("l2.ways", 8));
    hp.l2.latency = cfg_.getU64("l2.lat", 8);
    std::uint64_t llc_total = cfg_.getU64("llc.mb", 32) * 1024 * 1024;
    hp.llc.sliceBytes = llc_total / hp.numLlcSlices;
    hp.llc.ways = static_cast<unsigned>(cfg_.getU64("llc.ways", 16));
    hp.llc.latency = cfg_.getU64("llc.lat", 30);
    hp.remoteSnoopLatency = cfg_.getU64("sys.snoop_lat", 40);

    if (cfg_.getBool("sys.noc", false)) {
        MeshNoc::Params np2;
        np2.numVds = num_vds;
        np2.numSlices = hp.numLlcSlices;
        np2.hopLatency = cfg_.getU64("noc.hop_lat", 3);
        np2.portLatency = cfg_.getU64("noc.port_lat", 2);
        noc = std::make_unique<MeshNoc>(np2);
        hp.noc = noc.get();
        hp.llcArrayLatency = cfg_.getU64("llc.array_lat", 10);
    }

    backing.setOidGranularity(static_cast<unsigned>(
        cfg_.getU64("sim.oid_granularity", 1)));
    hier = std::make_unique<Hierarchy>(hp, backing, *dram, stats_);

    if (cfg_.getBool("sim.track_writes", false)) {
        wtracker = std::make_unique<WriteTracker>();
        hier->setWriteTracker(wtracker.get());
    }

    // Scheme-specific derived defaults: the paper's "epoch size" is
    // global store *uops*; our workloads emit one reference per
    // touched line, which covers several store uops of real code
    // (e.g., a B+Tree leaf shift is a memmove of 8-byte stores), so
    // the nominal uop count is divided by epoch.uops_per_ref to get
    // the line-reference epoch length. NVOverlay further divides it
    // across VDs; the PiCL tag structures mirror the cache geometry.
    std::uint64_t epoch_stores =
        cfg_.getU64("epoch.stores_global", 1u << 20);
    std::uint64_t uops_per_ref = cfg_.getU64("epoch.uops_per_ref", 16);
    std::uint64_t epoch_refs = std::max<std::uint64_t>(
        1, epoch_stores / std::max<std::uint64_t>(1, uops_per_ref));
    if (!cfg_.has("epoch.stores_refs"))
        cfg_.setDerived("epoch.stores_refs", epoch_refs);
    if (!cfg_.has("nvo.stores_per_epoch_vd"))
        cfg_.setDerived(
            "nvo.stores_per_epoch_vd",
            std::max<std::uint64_t>(
                1, cfg_.getU64("epoch.stores_refs", epoch_refs) /
                       num_vds));
    if (!cfg_.has("picl.tag_bytes"))
        cfg_.setDerived("picl.tag_bytes", llc_total);
    if (!cfg_.has("picl.l2_tag_bytes"))
        cfg_.setDerived("picl.l2_tag_bytes",
                        hp.l2.sizeBytes * num_vds);
    if (!cfg_.has("mnm.num_omcs"))
        cfg_.setDerived("mnm.num_omcs",
                        static_cast<std::uint64_t>(hp.numLlcSlices));

    scheme_ = makeScheme(scheme_name, cfg_, *nvm_, stats_);
    scheme_->attach(*hier);

    // Baselines tag commits with their global epoch; NVOverlay
    // installs itself as the hierarchy's VersionCtrl in attach().
    Scheme *raw = scheme_.get();
    hier->setEpochSource(
        [raw](unsigned) { return raw->globalEpoch(); });

    // Shard execution engine (ROADMAP item 1). par.shards > 0 selects
    // the host-parallel engine; the default keeps the sequential step
    // loop, which doubles as the bit-identity oracle. Probed with
    // has() first so a sequential run's config dump (and therefore
    // its exported stats JSON) is unchanged from before the engine
    // existed.
    unsigned par_shards =
        cfg_.has("par.shards")
            ? static_cast<unsigned>(cfg_.getU64("par.shards", 0))
            : 0;
    if (par_shards > 0) {
        par::ShardEngine::Params pp;
        pp.shards = std::min(par_shards, num_vds);
        pp.threads =
            static_cast<unsigned>(cfg_.getU64("par.threads", 0));
        pp.trafficRing = cfg_.getU64("par.ring", 1024);
        pp.pregen = cfg_.getBool("par.pregen", true);
        parEngine_ = std::make_unique<par::ShardEngine>(
            pp, *wl, num_vds, hp.numLlcSlices, cores_per_vd);
        hier->setTrafficSink(parEngine_.get());
        // One metric slot per shard plus the main slot; the engine's
        // token turns route records into their shard's slot and the
        // coordinator folds them back at every quantum barrier.
        obs::metricRegistry().setShards(pp.shards);
    }

    Core::Params cp;
    cp.issueWidth =
        static_cast<unsigned>(cfg_.getU64("sys.issue_width", 4));
    for (unsigned c = 0; c < num_cores; ++c)
        cores.push_back(std::make_unique<Core>(
            cp, c, *hier,
            parEngine_ ? parEngine_->sourceFor(c) : *wl, *scheme_,
            stats_));
    if (parEngine_) {
        std::vector<Core *> raw;
        for (auto &core : cores)
            raw.push_back(core.get());
        parEngine_->start(raw);
    }

    // Invariant sweeps (NVO_AUDIT builds): the hierarchy's structural
    // audit plus whatever protocol sweeps the scheme registers. Light
    // (epoch-scoped) sweeps run at every epoch boundary; full
    // structural sweeps every audit.stride quanta and at end of run.
    if (audit::enabled) {
        auditStride = cfg_.getU64("audit.stride", 64);
        Hierarchy *h = hier.get();
        auditor_.add("hierarchy", [h] { h->audit(); });
        scheme_->registerAudits(auditor_);
    }

    // Observability: the event tracer is a process-wide singleton, so
    // each freshly built System claims and clears it; the per-epoch
    // series snapshots cumulative RunStats counters at every epoch
    // boundary (consumers diff adjacent rows for per-epoch rates).
    obs::tracer().configure(cfg_);
    obs::ledger().configure(cfg_);
    seriesEnabled = cfg_.getBool("stats.series", true);
    if (seriesEnabled) {
        RunStats *s = &stats_;
        series_.addProbe("stores", [s] { return s->stores; });
        series_.addProbe("epoch_advances",
                         [s] { return s->epochAdvances; });
        series_.addProbe("lamport_advances",
                         [s] { return s->lamportAdvances; });
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(EvictReason::NumReasons);
             ++i) {
            series_.addProbe(
                std::string("evict_") +
                    toString(static_cast<EvictReason>(i)),
                [s, i] { return s->evictReason[i]; });
        }
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(NvmWriteKind::NumKinds);
             ++k) {
            series_.addProbe(
                std::string("nvm_write_bytes_") +
                    toString(static_cast<NvmWriteKind>(k)),
                [s, k] { return s->nvmWriteBytes[k]; });
        }
        series_.addProbe("nvm_write_ops",
                         [s] { return s->nvmWriteOps; });
        series_.addProbe("omc_buffer_hits",
                         [s] { return s->omcBufferHits; });
        series_.addProbe("omc_buffer_misses",
                         [s] { return s->omcBufferMisses; });
        series_.addProbe("master_table_bytes",
                         [s] { return s->masterTableBytes; });
        series_.addProbe("master_mapped_lines",
                         [s] { return s->masterMappedLines; });
        series_.addProbe("epoch_table_bytes",
                         [s] { return s->epochTableBytes; });
        series_.addProbe("pool_pages_in_use",
                         [s] { return s->poolPagesInUse; });
        series_.addProbe("gc_compactions",
                         [s] { return s->gcCompactions; });
        series_.addProbe("gc_bytes_copied",
                         [s] { return s->gcBytesCopied; });
        series_.addProbe("tag_walk_write_backs",
                         [s] { return s->tagWalkWriteBacks; });
        // Tenant aggregates live in stats.extra (per-ASID detail is
        // export-only); gated so untenanted series stay identical.
        if (cfg_.has("tenant.enabled") &&
            cfg_.getBool("tenant.enabled", false)) {
            series_.addProbe("tenant_throttle_stalls", [s] {
                auto it = s->extra.find("tenant_throttle_stalls");
                return it == s->extra.end() ? 0 : it->second;
            });
            series_.addProbe("tenant_quota_rejections", [s] {
                auto it = s->extra.find("tenant_quota_rejections");
                return it == s->extra.end() ? 0 : it->second;
            });
        }
        // Soak runs cap the series memory; the exporter notes the
        // decimation factor (has()-gated: unset keeps the series —
        // and its JSON — exactly as before the cap existed).
        if (cfg_.has("stats.series_max"))
            series_.setMaxRows(static_cast<std::size_t>(
                cfg_.getU64("stats.series_max", 0)));
    }

    // Adaptive policy engine (ROADMAP item 5). has()-gated like
    // par.shards: runs without the key resolve no policy.* defaults,
    // so their config dump and stats JSON stay byte-identical.
    if (cfg_.has("policy.enabled") &&
        cfg_.getBool("policy.enabled", false)) {
        auto *nvo_scheme =
            dynamic_cast<NVOverlayScheme *>(scheme_.get());
        if (nvo_scheme)
            policy_ = std::make_unique<policy::PolicyEngine>(
                *nvo_scheme, stats_,
                policy::Params::fromConfig(cfg_));
    }
}

void
System::auditNow()
{
    if (!audit::enabled)
        return;
    auditor_.runAll();
    quantaSinceAudit = 0;
    epochsAtLastAudit = scheme_->epochsCompleted();
}

void
System::stepQuantum()
{
    quantumEnd += quantum;
    obs::tracer().setNow(quantumEnd);
    if (parEngine_) {
        // Token round through the shards: same core-major order as
        // the loop below, with idle workers pre-generating batches.
        parEngine_->runQuantum(quantumEnd);
        // Quantum barrier: fold shard-local metric slots into the
        // main slot in shard order, so any later snapshot reads the
        // same totals a sequential run would have produced.
        if (obs::metricRegistry().armed())
            obs::metricRegistry().mergeShards();
    } else {
        for (auto &core : cores)
            core->runUntil(quantumEnd);
    }
    scheme_->tick(quantumEnd);
    if (Cycle gs = scheme_->takeGlobalStall()) {
        for (auto &core : cores)
            core->addStall(gs);
        stats_.barrierStallCycles += gs;
    }

    if ((seriesEnabled || exporter_.enabled() || policy_) &&
        scheme_->epochsCompleted() != epochsAtLastSample) {
        // Derived aggregates (table/pool sizes) are refreshed lazily;
        // pull them up to date so the sampled row is consistent.
        scheme_->updateStats();
        if (seriesEnabled)
            series_.sample(scheme_->globalEpoch(), quantumEnd);
        exporter_.onEpochBoundary(scheme_->globalEpoch(), quantumEnd);
        // Policy evaluation runs after the sample/export, so the
        // recorded row reflects the epoch as it actually ran and the
        // actuation applies from the next epoch on. Decisions read
        // only coordinator-side simulated state (quiescent at the
        // quantum barrier), keeping shard runs byte-identical.
        if (policy_)
            policy_->onEpochBoundary(quantumEnd);
        epochsAtLastSample = scheme_->epochsCompleted();
    }

    if (audit::enabled) {
        ++quantaSinceAudit;
        bool epoch_boundary =
            scheme_->epochsCompleted() != epochsAtLastAudit;
        bool stride_hit =
            auditStride != 0 && quantaSinceAudit >= auditStride;
        if (stride_hit) {
            auditNow();
        } else if (epoch_boundary) {
            // Epochs can advance every quantum, so the boundary pass
            // is restricted to the Light (O(#VDs)) sweeps; the full
            // structural walk waits for the stride.
            auditor_.runLight();
            epochsAtLastAudit = scheme_->epochsCompleted();
        }
    }
}

bool
System::done() const
{
    for (const auto &core : cores)
        if (!core->done())
            return false;
    return true;
}

bool
System::runUntil(Cycle limit)
{
    while (!done() && quantumEnd < limit)
        stepQuantum();
    stats_.cycles = quantumEnd;
    return done();
}

void
System::run()
{
    // Phase self-profiling: host wall clock split between the
    // execution loop and the shutdown flush, reported through
    // stats.extra so slow runs are attributable without a profiler.
    using SteadyClock = std::chrono::steady_clock;
    auto host_us = [](SteadyClock::time_point a,
                      SteadyClock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(b -
                                                                  a)
                .count());
    };
    auto t0 = SteadyClock::now();

    NVO_TRACE(Harness, Phase, obs::trackSim, quantumEnd,
              static_cast<std::uint64_t>(obs::PhaseId::RunBegin), 0);
    while (!done())
        stepQuantum();
    nvo_assert(!finalized, "run() called twice");
    finalized = true;
    auto t1 = SteadyClock::now();

    Cycle max_core = 0;
    for (const auto &core : cores)
        max_core = std::max(max_core, core->cycle());

    // The paper's normalized-cycles metric is execution wall clock;
    // the post-run drain is a shutdown artifact reported separately.
    NVO_TRACE(Harness, Phase, obs::trackSim, quantumEnd,
              static_cast<std::uint64_t>(obs::PhaseId::FinalizeBegin),
              0);
    Cycle flush_done = scheme_->finalize(std::max(max_core, quantumEnd));
    stats_.cycles = max_core;
    stats_.extra["finalize_drain_cycles"] =
        flush_done > max_core ? flush_done - max_core : 0;
    NVO_TRACE(Harness, Phase, obs::trackSim, flush_done,
              static_cast<std::uint64_t>(obs::PhaseId::FinalizeEnd),
              0);

    // Close the metric series with a post-finalize row: the final
    // epoch's evictions and the shutdown flush land here (forced
    // past any decimation cap so the closing row always exists).
    scheme_->updateStats();
    if (seriesEnabled)
        series_.sampleForced(scheme_->globalEpoch(), flush_done);
    exporter_.finalExport(scheme_->globalEpoch(), flush_done);
    if (policy_)
        policy_->exportStats(stats_);
    nvm_->exportWear(stats_);

    auto t2 = SteadyClock::now();
    stats_.extra["host_run_us"] = host_us(t0, t1);
    stats_.extra["host_finalize_us"] = host_us(t1, t2);

    // Everything is quiescent after finalize; a full sweep here
    // catches anything the periodic sweeps missed.
    auditNow();
}

} // namespace nvo
