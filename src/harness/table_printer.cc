#include "harness/table_printer.hh"

#include <cstdio>
#include <iomanip>

namespace nvo
{

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned width)
    : cols(std::move(columns)), colWidth(width)
{
}

void
TablePrinter::printHeader(std::ostream &os) const
{
    for (const auto &c : cols)
        os << std::setw(colWidth) << c;
    os << "\n";
    os << std::string(cols.size() * colWidth, '-') << "\n";
}

void
TablePrinter::printRow(const std::vector<std::string> &cells,
                       std::ostream &os) const
{
    for (const auto &c : cells)
        os << std::setw(colWidth) << c;
    os << "\n";
}

std::string
TablePrinter::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

} // namespace nvo
