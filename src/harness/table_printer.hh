/**
 * @file
 * Aligned-table output for the bench binaries: each bench prints rows
 * directly comparable to its paper figure.
 */

#ifndef NVO_HARNESS_TABLE_PRINTER_HH
#define NVO_HARNESS_TABLE_PRINTER_HH

#include <iostream>
#include <string>
#include <vector>

namespace nvo
{

class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> columns,
                          unsigned width = 12);

    void printHeader(std::ostream &os = std::cout) const;
    void printRow(const std::vector<std::string> &cells,
                  std::ostream &os = std::cout) const;

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::vector<std::string> cols;
    unsigned colWidth;
};

} // namespace nvo

#endif // NVO_HARNESS_TABLE_PRINTER_HH
