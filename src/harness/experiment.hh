/**
 * @file
 * Experiment driver shared by the bench binaries: builds a System
 * from the Table II default configuration (plus overrides), runs it,
 * and returns the RunStats. Also provides environment-variable
 * plumbing so `NVO_OPS=… ./bench/fig11_cycles` can scale runs without
 * rebuilding.
 */

#ifndef NVO_HARNESS_EXPERIMENT_HH
#define NVO_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace nvo
{

/** The Table II configuration. */
Config defaultConfig();

/**
 * Apply NVO_* environment overrides (NVO_OPS, NVO_EPOCH_STORES,
 * NVO_THREADS, NVO_SEED) and any "key=value" strings in @p args.
 */
void applyOverrides(Config &cfg,
                    const std::vector<std::string> &args = {});

struct ExpResult
{
    std::string scheme;
    std::string workload;
    RunStats stats;
    double hostSeconds = 0;
};

/** Build, run to completion, finalize, and collect stats. */
ExpResult runExperiment(const Config &cfg, const std::string &scheme,
                        const std::string &workload);

} // namespace nvo

#endif // NVO_HARNESS_EXPERIMENT_HH
