/**
 * @file
 * Full-system assembly: backing store, DRAM/NVM device models, cache
 * hierarchy, cores, snapshot scheme, and workload, built from one
 * Config (defaults follow Table II) and driven with a bound-and-weave
 * quantum loop.
 */

#ifndef NVO_HARNESS_SYSTEM_HH
#define NVO_HARNESS_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "baselines/scheme.hh"
#include "cache/hierarchy.hh"
#include "cache/noc.hh"
#include "common/audit.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "mem/backing_store.hh"
#include "mem/dram_model.hh"
#include "mem/nvm_model.hh"
#include "mem/write_tracker.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"
#include "par/engine.hh"
#include "workload/workload.hh"

namespace nvo
{

namespace policy
{
class PolicyEngine;
} // namespace policy

class System
{
  public:
    /**
     * Build a system running @p workload_name under @p scheme_name.
     * Config keys (all optional; defaults are Table II):
     *   sys.cores, sys.cores_per_vd, sys.llc_slices, sys.quantum
     *   l1.kb/l1.ways/l1.lat, l2.kb/l2.ways/l2.lat,
     *   llc.mb/llc.ways/llc.lat
     *   dram.channels, nvm.banks/nvm.write_occupancy/nvm.read_lat/
     *   nvm.queue_depth
     *   epoch.stores_global (1M store uops, Sec. VI-B)
     *   sim.track_writes (enable the verification tracker)
     *   audit.stride (run full invariant sweeps every N quanta when
     *   the build compiles audits in; 0 disables periodic full
     *   sweeps; epoch boundaries always run the light epoch-scoped
     *   sweeps)
     *   trace.enabled / trace.cats / trace.ring (event tracer; the
     *   global tracer is reconfigured and cleared at build time)
     *   stats.series (sample the per-epoch metric series at every
     *   epoch boundary; default on)
     *   par.shards (0 = sequential step loop, the determinism oracle;
     *   N > 0 = shared-nothing shard engine with N shards, clamped to
     *   the VD count), par.threads (workers; 0 = one per shard),
     *   par.ring (traffic-ring capacity), par.pregen (idle-time
     *   workload pre-generation for confinement-certified workloads)
     *   wl.* (workload sizing), nvo.* / mnm.* / picl.* / sw.*
     */
    System(const Config &cfg, const std::string &scheme_name,
           const std::string &workload_name);

    /** Variant with an injected workload (tests). */
    System(const Config &cfg, const std::string &scheme_name,
           std::unique_ptr<WorkloadBase> workload);

    ~System();

    /** Run to completion and finalize the scheme. */
    void run();

    /**
     * Run until the global clock reaches @p limit (a simulated crash
     * point when the workload has not finished). Returns true when
     * the workload completed before the limit. No finalize.
     */
    bool runUntil(Cycle limit);

    bool done() const;
    Cycle now() const { return quantumEnd; }

    RunStats &stats() { return stats_; }
    const RunStats &stats() const { return stats_; }
    Hierarchy &hierarchy() { return *hier; }
    Scheme &scheme() { return *scheme_; }
    NvmModel &nvm() { return *nvm_; }
    BackingStore &memory() { return backing; }
    WorkloadBase &workload() { return *wl; }
    WriteTracker *tracker() { return wtracker.get(); }
    const Config &config() const { return cfg_; }

    /** Run every registered invariant sweep once (no-op when the
     *  build compiles audits out). */
    void auditNow();

    Auditor &auditor() { return auditor_; }

    /** Per-epoch metric time series sampled at epoch boundaries. */
    const obs::EpochSeries &epochSeries() const { return series_; }

    /** The shard engine, or nullptr when running sequentially. */
    par::ShardEngine *parEngine() { return parEngine_.get(); }

    /** The adaptive policy engine, or nullptr unless
     *  `policy.enabled=1` and the scheme is nvoverlay. */
    policy::PolicyEngine *policyEngine() { return policy_.get(); }
    const policy::PolicyEngine *policyEngine() const
    {
        return policy_.get();
    }

  private:
    void build(const std::string &scheme_name);
    void stepQuantum();

    Config cfg_;
    RunStats stats_;
    BackingStore backing;
    std::unique_ptr<WriteTracker> wtracker;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<NvmModel> nvm_;
    std::unique_ptr<WorkloadBase> wl;
    std::unique_ptr<Scheme> scheme_;
    std::unique_ptr<MeshNoc> noc;
    std::unique_ptr<Hierarchy> hier;
    std::vector<std::unique_ptr<Core>> cores;
    /** Declared after `cores`: destroyed first, while the cores it
     *  feeds StagedSources to still exist but no longer run. */
    std::unique_ptr<par::ShardEngine> parEngine_;
    Cycle quantum;
    Cycle quantumEnd = 0;
    bool finalized = false;
    Auditor auditor_;
    std::uint64_t auditStride = 0;
    std::uint64_t quantaSinceAudit = 0;
    std::uint64_t epochsAtLastAudit = 0;

    obs::EpochSeries series_;
    bool seriesEnabled = true;
    std::uint64_t epochsAtLastSample = 0;
    /** Periodic Prometheus/JSONL metric exports (obs/registry.hh). */
    obs::MetricExporter exporter_;
    /** Adaptive policy engine (src/policy); null unless enabled. */
    std::unique_ptr<policy::PolicyEngine> policy_;
};

} // namespace nvo

#endif // NVO_HARNESS_SYSTEM_HH
