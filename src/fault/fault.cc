#include "fault/fault.hh"

#include "obs/trace.hh"

namespace nvo
{
namespace fault
{

Registry &
registry()
{
    static Registry instance;
    return instance;
}

void
Registry::arm(FaultPlan new_plan)
{
    plan = std::move(new_plan);
    armed_ = true;
    counters.clear();
}

void
Registry::disarm()
{
    armed_ = false;
    plan.triggers.clear();
}

void
Registry::setCounting(bool on)
{
    counting_ = on;
    if (on)
        counters.clear();
}

std::uint64_t
Registry::hits(const std::string &point) const
{
    auto it = counters.find(point);
    return it == counters.end() ? 0 : it->second;
}

bool
Registry::step(const char *point, std::uint64_t &hit_no,
               Action &action)
{
    std::uint64_t n = ++counters[point];
    hit_no = n;
    if (!armed_)
        return false;
    for (const auto &t : plan.triggers) {
        if (t.point != point)
            continue;
        bool fires = t.action == Action::Crash
                         ? n == t.hit
                         : n >= t.hit && n < t.hit + t.count;
        if (fires) {
            action = t.action;
            return true;
        }
    }
    return false;
}

void
Registry::hitPoint(const char *point)
{
    if (paused_ || (!armed_ && !counting_))
        return;
    std::uint64_t hit_no = 0;
    Action action{};
    if (!step(point, hit_no, action))
        return;
    // A statement hook cannot report a write error; only crash here.
    if (action == Action::Crash) {
        NVO_TRACE_NOW(Fault, FaultCrash, obs::trackSim, hit_no, 0);
        throw CrashFault{point, hit_no};
    }
}

bool
Registry::errorPoint(const char *point)
{
    if (paused_ || (!armed_ && !counting_))
        return false;
    std::uint64_t hit_no = 0;
    Action action{};
    if (!step(point, hit_no, action))
        return false;
    if (action == Action::Crash) {
        NVO_TRACE_NOW(Fault, FaultCrash, obs::trackSim, hit_no, 0);
        throw CrashFault{point, hit_no};
    }
    NVO_TRACE_NOW(Fault, FaultNvmError, obs::trackNvm, hit_no, 0);
    return true;
}

ScopedPlan::ScopedPlan(FaultPlan plan)
{
    registry().arm(std::move(plan));
}

ScopedPlan::~ScopedPlan()
{
    registry().disarm();
}

} // namespace fault
} // namespace nvo
