#include "fault/crash_sim.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "harness/system.hh"
#include "mem/write_tracker.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "nvoverlay/recovery.hh"
#include "obs/trace.hh"
#include "par/procpool.hh"

namespace nvo
{
namespace fault
{

CrashSimulator::CrashSimulator(const Config &cfg, std::string scheme,
                               std::string workload)
    : cfg_(cfg), scheme_(std::move(scheme)),
      workload_(std::move(workload))
{
}

CrashReport
CrashSimulator::run(const CrashPlan &plan)
{
    CrashReport report;
    Config cfg = cfg_;
    cfg.set("sim.track_writes", "true");
    cfg.set("persist.armed", "true");
    // trace.crash_out: keep the tracer recording so the ring can be
    // flushed after the crash instead of dying with it.
    std::string crash_trace = cfg.getStr("trace.crash_out", "");
    if (!crash_trace.empty() && !cfg.has("trace.enabled"))
        cfg.set("trace.enabled", "true");
    System sys(cfg, scheme_, workload_);

    auto *scheme = dynamic_cast<NVOverlayScheme *>(&sys.scheme());
    nvo_assert(scheme != nullptr,
               "crash campaigns need scheme=nvoverlay");

    if (!plan.point.empty()) {
        nvo_assert(enabled, "point-based crash plans need a build "
                            "with NVO_FAULT=ON");
        FaultPlan fp;
        fp.crashAt(plan.point, plan.hit);
        ScopedPlan armed(std::move(fp));
        try {
            // If the plan never fires the run completes with a clean
            // finalize; the crash below then truncates nothing and
            // verification checks the final image.
            sys.run();
        } catch (const CrashFault &crash) {
            report.crashed = true;
            report.firedPoint = crash.point;
            report.firedHit = crash.hit;
        }
    } else {
        // Power cut at a planned cycle: stop mid-run, no finalize.
        sys.runUntil(plan.cycle);
        report.crashed = true;
        report.firedPoint = "cycle";
        report.firedHit = plan.cycle;
    }

    MnmBackend &backend = scheme->backend();
    backend.crashReset();

    RecoveryManager rm(backend);
    auto result = rm.recover();
    report.recEpoch = result.recEpoch;
    report.linesRestored = result.linesRestored;
    report.error = RecoveryManager::validate(result, backend);

    // Byte-exact shadow verification: every tracked line must carry
    // the content of its last store at or before the recovered
    // rec-epoch — unless that store never reached the backend (the
    // tolerated in-flight window, see file header).
    for (Addr line : sys.tracker()->trackedLines()) {
        auto expect =
            sys.tracker()->expectedEntry(line, result.recEpoch);
        if (!expect)
            continue;
        LineData got;
        result.image->readLine(line, got);
        ++report.linesChecked;
        if (got.digest() == expect->digest)
            continue;
        if (backend.ackedEpoch(line) < expect->epoch) {
            ++report.inflightSkips;
            continue;
        }
        ++report.mismatches;
    }

    // Flush after verification so crash, rebuild, and recovery
    // events all land in the exported trace.
    if (report.crashed && !crash_trace.empty()) {
        std::ofstream os(crash_trace);
        if (os) {
            obs::tracer().exportChrome(os);
            inform("crash trace (%zu events) -> %s",
                   obs::tracer().size(), crash_trace.c_str());
        } else {
            warn("cannot open trace.crash_out file '%s'",
                 crash_trace.c_str());
        }
    }
    return report;
}

namespace
{

struct Probe
{
    /** (fault point, hits observed over a full run). */
    std::vector<std::pair<std::string, std::uint64_t>> points;
    Cycle cycles = 0;
};

Probe
probeWorkload(const Config &base_cfg, const std::string &scheme,
              const std::string &workload)
{
    Probe probe;
    Config cfg = base_cfg;
    cfg.set("sim.track_writes", "true");
    System sys(cfg, scheme, workload);
    if (enabled) {
        registry().setCounting(true);
        sys.run();
        registry().setCounting(false);
        for (const auto &kv : registry().allHits())
            probe.points.emplace_back(kv.first, kv.second);
        registry().resetCounters();
    } else {
        sys.run();
    }
    probe.cycles = sys.now();
    return probe;
}

std::string
reproLine(const CampaignParams &params, const std::string &workload,
          const CrashPlan &plan)
{
    std::string line = "nvo_sim scheme=" + params.scheme +
                       " workload=" + workload;
    if (plan.point.empty()) {
        line += " crash_cycle=" + std::to_string(plan.cycle);
    } else {
        line += " crash_point=" + plan.point +
                " crash_hit=" + std::to_string(plan.hit);
    }
    return line;
}

/** Bisect toward the earliest still-failing trigger of the plan. */
CrashPlan
minimizePlan(const Config &base_cfg, const CampaignParams &params,
             const std::string &workload, CrashPlan plan)
{
    auto fails = [&](const CrashPlan &candidate) {
        CrashSimulator sim(base_cfg, params.scheme, workload);
        return !sim.run(candidate).consistent();
    };
    bool cycle_mode = plan.point.empty();
    std::uint64_t lo = 1;
    std::uint64_t hi = cycle_mode ? plan.cycle : plan.hit;
    std::uint64_t best = hi;
    while (lo < hi) {
        std::uint64_t mid = lo + (hi - lo) / 2;
        CrashPlan candidate = plan;
        if (cycle_mode)
            candidate.cycle = mid;
        else
            candidate.hit = mid;
        if (fails(candidate)) {
            best = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if (cycle_mode)
        plan.cycle = best;
    else
        plan.hit = best;
    return plan;
}

/** Pipe-framed CrashReport (par::forkMap payload). The two string
 *  fields cannot contain newlines, so a line-oriented format is
 *  unambiguous. */
std::string
encodeReport(const CrashReport &rep)
{
    std::ostringstream os;
    os << (rep.crashed ? 1 : 0) << ' ' << rep.firedHit << ' '
       << rep.recEpoch << ' ' << rep.linesChecked << ' '
       << rep.mismatches << ' ' << rep.inflightSkips << ' '
       << rep.linesRestored << '\n'
       << rep.firedPoint << '\n'
       << rep.error;
    return os.str();
}

CrashReport
decodeReport(const std::string &payload)
{
    CrashReport rep;
    std::istringstream is(payload);
    int crashed = 0;
    is >> crashed >> rep.firedHit >> rep.recEpoch >>
        rep.linesChecked >> rep.mismatches >> rep.inflightSkips >>
        rep.linesRestored;
    rep.crashed = crashed != 0;
    is.ignore();   // the newline ending the numeric row
    std::getline(is, rep.firedPoint);
    std::getline(is, rep.error, '\0');
    nvo_assert(!is.bad(), "malformed campaign worker payload");
    return rep;
}

} // namespace

CampaignResult
runCrashCampaign(const Config &base_cfg, const CampaignParams &params)
{
    CampaignResult res;
    nvo_assert(!params.workloads.empty(),
               "crash campaign needs at least one workload");
    nvo_assert(params.trials > 0);

    // Bulk trials run untraced; the minimized failing plan is
    // re-run with tracing at the end so the exported ring matches
    // the printed repro, not whichever trial crashed last.
    std::string crash_trace =
        base_cfg.getStr("trace.crash_out", "");
    Config trial_cfg = base_cfg;
    trial_cfg.set("trace.crash_out", "");

    std::vector<Probe> probes;
    for (const auto &workload : params.workloads) {
        Probe probe =
            probeWorkload(trial_cfg, params.scheme, workload);
        inform("crash-campaign: probe %s: %zu fault points, %llu "
               "cycles",
               workload.c_str(), probe.points.size(),
               static_cast<unsigned long long>(probe.cycles));
        probes.push_back(std::move(probe));
    }

    // Every plan is drawn in the parent before any trial runs. The
    // trials themselves never touch the Rng, so this produces the
    // exact plan stream of the historical draw-then-run loop — and
    // makes the stream independent of how trials are scheduled
    // across worker processes.
    Rng rng(params.seed);
    std::vector<CrashPlan> plans;
    for (unsigned t = 0; t < params.trials; ++t) {
        const Probe &probe =
            probes[t % static_cast<unsigned>(params.workloads.size())];
        CrashPlan plan;
        if (enabled && !probe.points.empty()) {
            const auto &pt =
                probe.points[rng.below(probe.points.size())];
            plan.point = pt.first;
            plan.hit = 1 + rng.below(std::max<std::uint64_t>(
                               pt.second, 1));
        } else {
            plan.cycle =
                1 + rng.below(std::max<Cycle>(probe.cycles, 2) - 1);
        }
        plans.push_back(std::move(plan));
    }

    std::vector<std::string> payloads = par::forkMap(
        params.trials, params.jobs,
        [&](unsigned t) {
            unsigned wi =
                t % static_cast<unsigned>(params.workloads.size());
            CrashSimulator sim(trial_cfg, params.scheme,
                               params.workloads[wi]);
            return encodeReport(sim.run(plans[t]));
        },
        // Children stay silent; the parent prints every per-trial
        // line below, in trial order, whatever the job count.
        [](unsigned) { setQuiet(true); });

    for (unsigned t = 0; t < params.trials; ++t) {
        unsigned wi =
            t % static_cast<unsigned>(params.workloads.size());
        const std::string &workload = params.workloads[wi];
        CrashReport rep = decodeReport(payloads[t]);
        ++res.trials;
        if (rep.crashed)
            ++res.crashes;
        res.linesChecked += rep.linesChecked;
        res.inflightSkips += rep.inflightSkips;
        inform("crash-campaign: trial %u/%u %s @ %s:%llu "
               "rec-epoch=%llu checked=%llu mismatches=%llu "
               "skips=%llu%s",
               t + 1, params.trials, workload.c_str(),
               rep.crashed ? rep.firedPoint.c_str() : "completed",
               static_cast<unsigned long long>(rep.firedHit),
               static_cast<unsigned long long>(rep.recEpoch),
               static_cast<unsigned long long>(rep.linesChecked),
               static_cast<unsigned long long>(rep.mismatches),
               static_cast<unsigned long long>(rep.inflightSkips),
               rep.consistent() ? "" : "  ** FAIL **");
        if (!rep.consistent()) {
            if (res.failures == 0) {
                // Minimization bisects serially in the parent; the
                // first failure is the lowest trial index, matching
                // the sequential sweep.
                CrashPlan minimized = minimizePlan(
                    trial_cfg, params, workload, plans[t]);
                res.failingRepro =
                    reproLine(params, workload, minimized);
                res.failingPlan = minimized;
                res.failingWorkload = workload;
                warn("crash-campaign: minimized repro: %s",
                     res.failingRepro.c_str());
            }
            ++res.failures;
        }
    }

    if (res.failures > 0 && !crash_trace.empty()) {
        CrashSimulator sim(base_cfg, params.scheme,
                           res.failingWorkload);
        sim.run(res.failingPlan);
    }
    return res;
}

} // namespace fault
} // namespace nvo
