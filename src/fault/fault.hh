/**
 * @file
 * Fault-injection registry for crash-consistency testing.
 *
 * The durability argument of the paper (Sec. V-E) is "crash anywhere,
 * recover at rec-epoch". To test "anywhere", protocol code is seeded
 * with named fault points:
 *
 *  - `NVO_FAULT_POINT(name)`: a statement hook. When a `FaultPlan` is
 *    armed and schedules a crash at the Nth hit of @p name, the hook
 *    throws `CrashFault`, unwinding mid-operation exactly as a power
 *    failure would interrupt the hardware (volatile structures are
 *    left torn; the persist domain still holds the undrained suffix).
 *  - `NVO_FAULT_ERROR(name)`: an expression hook evaluating to true
 *    when the plan injects a transient device-write error at this
 *    hit. Callers own the retry/backoff policy (the OMC drain path).
 *
 * Cost model mirrors NVO_AUDIT / NVO_TRACE: hooks compile to nothing
 * unless the build defines NVO_FAULT_ENABLED (CMake option
 * `NVO_FAULT`, default ON for Debug); compiled in but disarmed, a
 * hook is one load and one branch. The simulator is single-threaded,
 * so one process-wide registry keeps hooks free of plumbing.
 */

#ifndef NVO_FAULT_FAULT_HH
#define NVO_FAULT_FAULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvo
{
namespace fault
{

/** True when the build compiles fault hooks in. */
#ifdef NVO_FAULT_ENABLED
constexpr bool enabled = true;
#else
constexpr bool enabled = false;
#endif

/** Thrown from a fault point to simulate a power failure. */
struct CrashFault
{
    std::string point;
    std::uint64_t hit = 0;
};

/** What a trigger does when its hit count is reached. */
enum class Action
{
    Crash,      ///< throw CrashFault at the Nth hit
    NvmError,   ///< report a transient write error for `count` hits
};

/**
 * A deterministic fault schedule: triggers keyed by fault-point name.
 * Hits are 1-based; an NvmError trigger fails hits [hit, hit+count).
 */
struct FaultPlan
{
    struct Trigger
    {
        std::string point;
        std::uint64_t hit = 1;
        Action action = Action::Crash;
        std::uint64_t count = 1;   ///< NvmError: consecutive failures
    };

    std::vector<Trigger> triggers;

    FaultPlan &
    crashAt(std::string point, std::uint64_t hit)
    {
        triggers.push_back({std::move(point), hit, Action::Crash, 1});
        return *this;
    }

    FaultPlan &
    nvmErrorAt(std::string point, std::uint64_t hit,
               std::uint64_t count = 1)
    {
        triggers.push_back(
            {std::move(point), hit, Action::NvmError, count});
        return *this;
    }
};

/**
 * Process-wide fault registry. Counts hits per point while armed (or
 * while counting is on, which campaign probe runs use to learn each
 * point's hit population before planning crashes).
 */
class Registry
{
  public:
    /** Install @p plan and reset hit counters. */
    void arm(FaultPlan plan);

    /** Remove the plan; counters stop advancing unless counting. */
    void disarm();

    bool armed() const { return armed_; }

    /** Count hits with no plan installed (campaign probe runs). */
    void setCounting(bool on);

    /** Hits observed for @p point since the last arm/reset. */
    std::uint64_t hits(const std::string &point) const;

    /** All points hit since the last arm/reset, with counts. */
    const std::map<std::string, std::uint64_t> &allHits() const
    {
        return counters;
    }

    void resetCounters() { counters.clear(); }

    /** Statement hook body; throws CrashFault when the plan says so. */
    void hitPoint(const char *point);

    /** Expression hook body; true = inject a transient write error. */
    bool errorPoint(const char *point);

    /**
     * Suspend all hooks (no counting, no triggers). The standby
     * replica applies deltas through the same backend code as the
     * primary; its applies must not consume the primary's fault
     * schedule or crash the campaign from the wrong machine.
     */
    void setPaused(bool on) { paused_ = on; }
    bool paused() const { return paused_; }

  private:
    struct Match
    {
        Action action;
        bool fired;
    };

    /** Advance @p point's counter and match it against the plan. */
    bool step(const char *point, std::uint64_t &hit_no,
              Action &action);

    bool armed_ = false;
    bool counting_ = false;
    bool paused_ = false;
    FaultPlan plan;
    std::map<std::string, std::uint64_t> counters;
};

/** The process-wide registry (single-threaded simulator). */
Registry &registry();

/** RAII guard: arms @p plan now, disarms on scope exit. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(FaultPlan plan);
    ~ScopedPlan();
    ScopedPlan(const ScopedPlan &) = delete;
    ScopedPlan &operator=(const ScopedPlan &) = delete;
};

/** RAII guard: pauses every hook for the scope (replica applies). */
class ScopedPause
{
  public:
    ScopedPause() : was(registry().paused())
    {
        registry().setPaused(true);
    }
    ~ScopedPause() { registry().setPaused(was); }
    ScopedPause(const ScopedPause &) = delete;
    ScopedPause &operator=(const ScopedPause &) = delete;

  private:
    bool was;
};

} // namespace fault
} // namespace nvo

#ifdef NVO_FAULT_ENABLED
#define NVO_FAULT_POINT(name)                                          \
    do {                                                               \
        ::nvo::fault::registry().hitPoint(name);                       \
    } while (0)
#define NVO_FAULT_ERROR(name) (::nvo::fault::registry().errorPoint(name))
#else
/* Compiled out: operands stay type-checked but are never evaluated. */
#define NVO_FAULT_POINT(name)                                          \
    do {                                                               \
        if (false) {                                                   \
            static_cast<void>(name);                                   \
        }                                                              \
    } while (0)
#define NVO_FAULT_ERROR(name) (static_cast<void>(sizeof(name)), false)
#endif

#endif // NVO_FAULT_FAULT_HH
