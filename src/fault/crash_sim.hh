/**
 * @file
 * Crash-campaign driver (the proof layer for paper Sec. V-E).
 *
 * A trial runs a full workload under an armed persist domain, crashes
 * it — either by a FaultPlan trigger at the Nth hit of a named fault
 * point, or by a power cut at a planned cycle — discards all volatile
 * state, truncates the modelled NVM to its durable prefix, rebuilds
 * via RecoveryManager, and verifies every tracked line byte-exactly
 * against the shadow write tracker at the recovered rec-epoch.
 *
 * Known tolerated window: a version the frontend committed but the
 * backend never finished processing (the late-merge race of Fig. 6
 * optimization 2) dies with the caches, so a mismatching line whose
 * defining store was never acked by the backend is counted as an
 * in-flight skip, not a failure (see docs/PERSISTENCE.md).
 *
 * runCrashCampaign() sweeps seeded pseudo-random crash plans across
 * workloads deterministically: a probe run per workload learns each
 * fault point's hit population (and the total cycle budget for
 * cycle-mode plans), trials draw plans from a seeded Rng, and the
 * first failing plan is minimized to the smallest failing hit count
 * before being reported with a CLI repro line.
 *
 * With `trace.crash_out=<path>` set, a crashed run() flushes the
 * tracer's ring buffer to that path as Chrome trace-event JSON after
 * verification (so recovery events are included) — without this the
 * buffer would die with the volatile state it describes. A failing
 * campaign re-runs its minimized plan once at the end so the shipped
 * trace matches the printed repro line, not an arbitrary later trial.
 */

#ifndef NVO_FAULT_CRASH_SIM_HH
#define NVO_FAULT_CRASH_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace nvo
{
namespace fault
{

/** One planned crash. Empty point = power cut at `cycle` instead. */
struct CrashPlan
{
    std::string point;
    std::uint64_t hit = 1;
    Cycle cycle = 0;
};

struct CrashReport
{
    /** The planned crash actually fired (else the run completed and
     *  the final image was verified instead). */
    bool crashed = false;
    std::string firedPoint;
    std::uint64_t firedHit = 0;
    EpochWide recEpoch = 0;
    std::uint64_t linesChecked = 0;
    std::uint64_t mismatches = 0;
    /** Lines skipped because their defining version never reached
     *  the backend (tolerated in-flight loss window). */
    std::uint64_t inflightSkips = 0;
    std::uint64_t linesRestored = 0;
    /** Non-empty on structural recovery failure. */
    std::string error;

    bool consistent() const { return mismatches == 0 && error.empty(); }
};

/**
 * Runs one workload per run() call and crash-tests recovery. The
 * config is captured by value; run() forces `sim.track_writes` and
 * `persist.armed` on.
 */
class CrashSimulator
{
  public:
    CrashSimulator(const Config &cfg, std::string scheme,
                   std::string workload);

    CrashReport run(const CrashPlan &plan);

  private:
    Config cfg_;
    std::string scheme_;
    std::string workload_;
};

struct CampaignParams
{
    std::string scheme = "nvoverlay";
    std::vector<std::string> workloads;
    unsigned trials = 50;
    std::uint64_t seed = 1;
    /**
     * Worker processes for the trial sweep (par::forkMap); <= 1 runs
     * inline. Every plan is pre-drawn from the seeded Rng in the
     * parent before any trial executes, so the plan stream, the
     * merged result, and the first-failure choice (lowest trial
     * index) are identical for every job count.
     */
    unsigned jobs = 1;
};

struct CampaignResult
{
    unsigned trials = 0;
    /** Trials whose planned crash actually fired. */
    unsigned crashes = 0;
    unsigned failures = 0;
    std::uint64_t linesChecked = 0;
    std::uint64_t inflightSkips = 0;
    /** CLI repro of the first (minimized) failing plan. */
    std::string failingRepro;
    /** The minimized plan itself + its workload (trace re-run). */
    CrashPlan failingPlan;
    std::string failingWorkload;

    bool passed() const { return failures == 0; }
};

/**
 * Sweep @p params.trials seeded crash plans across the given
 * workloads. Point-mode plans need a build with NVO_FAULT=ON;
 * without it the campaign falls back to cycle-mode power cuts.
 */
CampaignResult runCrashCampaign(const Config &base_cfg,
                                const CampaignParams &params);

} // namespace fault
} // namespace nvo

#endif // NVO_FAULT_CRASH_SIM_HH
