#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace nvo
{
namespace obs
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (stack.empty())
        return;
    if (hasMember.back())
        os << ',';
    hasMember.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os << '{';
    stack.push_back(Ctx::Object);
    hasMember.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    nvo_assert(!stack.empty() && stack.back() == Ctx::Object,
               "endObject outside an object");
    os << '}';
    stack.pop_back();
    hasMember.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os << '[';
    stack.push_back(Ctx::Array);
    hasMember.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    nvo_assert(!stack.empty() && stack.back() == Ctx::Array,
               "endArray outside an array");
    os << ']';
    stack.pop_back();
    hasMember.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    nvo_assert(!stack.empty() && stack.back() == Ctx::Object,
               "key outside an object");
    nvo_assert(!pendingKey, "two keys without a value between them");
    if (hasMember.back())
        os << ',';
    hasMember.back() = true;
    os << '"' << escape(name) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    os << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        os << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    preValue();
    os << "null";
    return *this;
}

} // namespace obs
} // namespace nvo
