/**
 * @file
 * Per-epoch metric time series (the raw material behind the paper's
 * Figs. 12-17).
 *
 * An EpochSeries is a registry of named probes — closures reading a
 * cumulative counter (RunStats fields, backend aggregates). The
 * harness calls sample() at every epoch boundary (and once after
 * finalize), appending one row of probe readings stamped with the
 * epoch and cycle. Rows store cumulative values; consumers diff
 * adjacent rows for per-epoch rates, which keeps sampling O(#probes)
 * with no state in the probes themselves.
 *
 * Export: CSV (one probe per column) or JSON (column names + row
 * array), embedded in the stats_json file.
 */

#ifndef NVO_OBS_METRICS_HH
#define NVO_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nvo
{
namespace obs
{

class JsonWriter;

class EpochSeries
{
  public:
    /** Register probe @p fn under column @p name (append order). */
    void addProbe(std::string name,
                  std::function<std::uint64_t()> fn);

    /** Append one row: epoch, cycle, then every probe reading. */
    void sample(EpochWide epoch, Cycle now);

    std::size_t numProbes() const { return probes.size(); }
    std::size_t numSamples() const { return rows; }

    /** Column names including the leading "epoch" and "cycle". */
    std::vector<std::string> columns() const;

    /** Reading of column @p col in sample @p row. */
    std::uint64_t value(std::size_t row, std::size_t col) const;

    /** CSV: header row then one line per sample. */
    void writeCsv(std::ostream &os) const;

    /** JSON object value: {"columns": [...], "rows": [[...], ...]}. */
    void writeJson(JsonWriter &w) const;

  private:
    struct Probe
    {
        std::string name;
        std::function<std::uint64_t()> fn;
    };

    std::vector<Probe> probes;
    /** Row-major samples, stride = numProbes() + 2. */
    std::vector<std::uint64_t> data;
    std::size_t rows = 0;
};

} // namespace obs
} // namespace nvo

#endif // NVO_OBS_METRICS_HH
