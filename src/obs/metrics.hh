/**
 * @file
 * Per-epoch metric time series (the raw material behind the paper's
 * Figs. 12-17).
 *
 * An EpochSeries is a registry of named probes — closures reading a
 * cumulative counter (RunStats fields, backend aggregates). The
 * harness calls sample() at every epoch boundary (and once after
 * finalize), appending one row of probe readings stamped with the
 * epoch and cycle. Rows store cumulative values; consumers diff
 * adjacent rows for per-epoch rates, which keeps sampling O(#probes)
 * with no state in the probes themselves.
 *
 * Export: CSV (one probe per column) or JSON (column names + row
 * array), embedded in the stats_json file.
 */

#ifndef NVO_OBS_METRICS_HH
#define NVO_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_safety.hh"
#include "common/types.hh"

namespace nvo
{
namespace obs
{

class JsonWriter;

class EpochSeries
{
  public:
    /** Register probe @p fn under column @p name (append order). */
    void addProbe(std::string name,
                  std::function<std::uint64_t()> fn);

    /** Append one row: epoch, cycle, then every probe reading.
     *  Under a row cap (setMaxRows) only every decimation()-th call
     *  records; when the cap fills, every other held row is dropped
     *  and the decimation factor doubles, so memory stays bounded on
     *  soak runs of arbitrary length while the kept rows remain
     *  evenly spaced. */
    void sample(EpochWide epoch, Cycle now);

    /** Record unconditionally (the post-finalize closing row). */
    void sampleForced(EpochWide epoch, Cycle now);

    /**
     * Bound the series at @p max_rows held samples (`stats.series_max`;
     * 0 = unbounded, the default). Must be set before sampling
     * starts. The JSON export notes the final decimation factor so
     * consumers know the inter-row spacing.
     */
    void setMaxRows(std::size_t max_rows);

    /** Current decimation factor (1 = every boundary recorded). */
    std::uint64_t decimation() const;

    std::size_t
    numProbes() const
    {
        cap_.assertHeld();
        return probes.size();
    }
    std::size_t
    numSamples() const
    {
        cap_.assertHeld();
        return rows;
    }

    /** Column names including the leading "epoch" and "cycle". */
    std::vector<std::string> columns() const;

    /** Reading of column @p col in sample @p row. */
    std::uint64_t value(std::size_t row, std::size_t col) const;

    /** CSV: header row then one line per sample. */
    void writeCsv(std::ostream &os) const;

    /** JSON object value: {"columns": [...], "rows": [[...], ...]}. */
    void writeJson(JsonWriter &w) const;

  private:
    struct Probe
    {
        std::string name;
        std::function<std::uint64_t()> fn;
    };

    /** Sampling is a cross-shard rendezvous point: once shards run in
     *  parallel (ROADMAP item 1), probes read other shards' counters
     *  and must quiesce behind this capability. */
    void record(EpochWide epoch, Cycle now) NVO_REQUIRES(cap_);

    ShardCap cap_;
    std::vector<Probe> probes NVO_GUARDED_BY(cap_);
    /** Row-major samples, stride = numProbes() + 2. */
    std::vector<std::uint64_t> data NVO_GUARDED_BY(cap_);
    std::size_t rows NVO_GUARDED_BY(cap_) = 0;
    /** Row cap (0 = unbounded) and decimation state. */
    std::size_t maxRows_ NVO_GUARDED_BY(cap_) = 0;
    std::uint64_t decim_ NVO_GUARDED_BY(cap_) = 1;
    std::uint64_t sampleCalls_ NVO_GUARDED_BY(cap_) = 0;
};

} // namespace obs
} // namespace nvo

#endif // NVO_OBS_METRICS_HH
