/**
 * @file
 * Fixed-footprint log-bucketed latency/size histogram (HDR style).
 *
 * The speed campaign (ROADMAP item 3) needs distributions, not
 * averages: a radix walk that is usually 2 levels deep but
 * occasionally 5, or a page-pool scan that degrades from O(1) to a
 * full bitmap sweep, is invisible in a mean. A Histogram records
 * unsigned 64-bit samples into log-linear buckets: values below 16
 * are exact, and every higher octave is split into 16 sub-buckets, so
 * any reported quantile is within 1/16 (6.25%) relative error of the
 * true sample. The footprint is a fixed 976-bucket array (~7.8 KB) —
 * no allocation on the record path, ever.
 *
 * Buckets are plain counters, so two histograms merge by bucket-wise
 * addition: the shard-local instances the MetricRegistry hands out
 * fold into the main instance at quantum barriers without any loss,
 * keeping sharded metric snapshots byte-identical to the sequential
 * oracle's.
 *
 * Cost model: record() is branch-free except for the sub-16 fast
 * test — a bit-scan, two shifts, and four add/stores. Call sites go
 * through the registry's NVO_METRIC macro (obs/registry.hh), which
 * compiles to nothing under NVO_METRIC=OFF and is one load and one
 * branch when compiled in but disarmed.
 */

#ifndef NVO_OBS_HIST_HH
#define NVO_OBS_HIST_HH

#include <array>
#include <cstdint>
#include <limits>

namespace nvo
{
namespace obs
{

class Histogram
{
  public:
    /** Sub-bucket resolution: each octave splits 2^subBits ways. */
    static constexpr unsigned subBits = 4;
    static constexpr unsigned subCount = 1u << subBits;   // 16

    /** Exact buckets 0..15 plus 60 octave groups of 16: the last
     *  group covers values with bit 63 set, so every uint64 maps. */
    static constexpr unsigned numBuckets =
        subCount + (64 - subBits) * subCount;   // 976

    /** Bucket index of sample @p v (total order, dense, < numBuckets). */
    static unsigned
    bucketIndex(std::uint64_t v)
    {
        if (v < subCount)
            return static_cast<unsigned>(v);
        unsigned e = floorLog2(v);
        return ((e - subBits + 1) << subBits) |
               static_cast<unsigned>((v >> (e - subBits)) &
                                     (subCount - 1));
    }

    /** Smallest sample value mapping to bucket @p idx. */
    static std::uint64_t
    bucketLow(unsigned idx)
    {
        if (idx < subCount)
            return idx;
        unsigned group = idx >> subBits;   // >= 1
        return static_cast<std::uint64_t>(subCount + (idx &
                                                      (subCount - 1)))
               << (group - 1);
    }

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Bucket-wise addition; exact (no resampling). */
    void
    merge(const Histogram &o)
    {
        for (unsigned i = 0; i < numBuckets; ++i)
            buckets_[i] += o.buckets_[i];
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest/largest recorded sample; 0 when empty. */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucket(unsigned idx) const { return buckets_[idx]; }

    /**
     * Value at percentile @p p in [0, 100]: the lower bound of the
     * bucket holding the sample of rank ceil(p/100 * count), clamped
     * to [min, max] so exact extremes survive bucketing. Within 1/16
     * relative error of the rank-selected sample; 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    /** Sum of all bucket occupancies (== count() unless corrupted;
     *  the invariant nvo_analyze checks offline). */
    std::uint64_t bucketOccupancySum() const;

  private:
    static unsigned
    floorLog2(std::uint64_t v)
    {
#if defined(__GNUC__) || defined(__clang__)
        return 63u - static_cast<unsigned>(__builtin_clzll(v));
#else
        unsigned e = 0;
        while (v >>= 1)
            ++e;
        return e;
#endif
    }

    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

} // namespace obs
} // namespace nvo

#endif // NVO_OBS_HIST_HH
