#include "obs/metrics.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/json.hh"

namespace nvo
{
namespace obs
{

void
EpochSeries::addProbe(std::string name,
                      std::function<std::uint64_t()> fn)
{
    cap_.assertHeld();
    nvo_assert(rows == 0, "probe added after sampling started");
    probes.push_back({std::move(name), std::move(fn)});
}

void
EpochSeries::record(EpochWide epoch, Cycle now)
{
    data.push_back(epoch);
    data.push_back(now);
    for (const auto &probe : probes)
        data.push_back(probe.fn());
    ++rows;
}

void
EpochSeries::sample(EpochWide epoch, Cycle now)
{
    cap_.assertHeld();
    // Decimation: only every decim_-th boundary records. The skip
    // counter keeps counting while rows are dropped, so the kept
    // rows stay evenly spaced in boundary index.
    if (sampleCalls_++ % decim_ != 0)
        return;
    record(epoch, now);
    if (maxRows_ && rows >= maxRows_) {
        // Cap reached: drop every other held row (keeping the even
        // indices, i.e., boundary indices divisible by 2*decim_) and
        // double the decimation factor. Memory stays bounded at
        // maxRows_ rows no matter how long the soak runs.
        std::size_t stride = probes.size() + 2;
        std::size_t kept = 0;
        for (std::size_t r = 0; r < rows; r += 2, ++kept)
            if (kept != r)
                std::copy(data.begin() +
                              static_cast<std::ptrdiff_t>(r * stride),
                          data.begin() + static_cast<std::ptrdiff_t>(
                                             (r + 1) * stride),
                          data.begin() +
                              static_cast<std::ptrdiff_t>(kept *
                                                          stride));
        rows = kept;
        data.resize(rows * stride);
        decim_ *= 2;
    }
}

void
EpochSeries::sampleForced(EpochWide epoch, Cycle now)
{
    // The closing row must always land (it holds the finalize
    // flush), so it bypasses the decimation skip and never triggers
    // a halving pass; the series holds at most maxRows_ + 1 rows.
    cap_.assertHeld();
    ++sampleCalls_;
    record(epoch, now);
}

void
EpochSeries::setMaxRows(std::size_t max_rows)
{
    cap_.assertHeld();
    nvo_assert(rows == 0, "row cap set after sampling started");
    // A cap below 2 could never halve into forward progress.
    nvo_assert(max_rows == 0 || max_rows >= 2,
               "stats.series_max must be 0 or >= 2");
    maxRows_ = max_rows;
}

std::uint64_t
EpochSeries::decimation() const
{
    cap_.assertHeld();
    return decim_;
}

std::vector<std::string>
EpochSeries::columns() const
{
    cap_.assertHeld();
    std::vector<std::string> cols = {"epoch", "cycle"};
    for (const auto &probe : probes)
        cols.push_back(probe.name);
    return cols;
}

std::uint64_t
EpochSeries::value(std::size_t row, std::size_t col) const
{
    cap_.assertHeld();
    std::size_t stride = probes.size() + 2;
    nvo_assert(row < rows && col < stride, "series index out of range");
    return data[row * stride + col];
}

void
EpochSeries::writeCsv(std::ostream &os) const
{
    cap_.assertHeld();
    auto cols = columns();
    for (std::size_t c = 0; c < cols.size(); ++c)
        os << (c ? "," : "") << cols[c];
    os << "\n";
    std::size_t stride = probes.size() + 2;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < stride; ++c)
            os << (c ? "," : "") << data[r * stride + c];
        os << "\n";
    }
}

void
EpochSeries::writeJson(JsonWriter &w) const
{
    cap_.assertHeld();
    w.beginObject();
    w.key("columns").beginArray();
    for (const auto &col : columns())
        w.value(col);
    w.endArray();
    w.key("rows").beginArray();
    std::size_t stride = probes.size() + 2;
    for (std::size_t r = 0; r < rows; ++r) {
        w.beginArray();
        for (std::size_t c = 0; c < stride; ++c)
            w.value(data[r * stride + c]);
        w.endArray();
    }
    w.endArray();
    // Only capped series note their decimation factor, so the JSON
    // of every pre-existing (uncapped) run is byte-unchanged.
    if (maxRows_)
        w.kv("decimation", decim_);
    w.endObject();
}

} // namespace obs
} // namespace nvo
