#include "obs/metrics.hh"

#include "common/log.hh"
#include "obs/json.hh"

namespace nvo
{
namespace obs
{

void
EpochSeries::addProbe(std::string name,
                      std::function<std::uint64_t()> fn)
{
    cap_.assertHeld();
    nvo_assert(rows == 0, "probe added after sampling started");
    probes.push_back({std::move(name), std::move(fn)});
}

void
EpochSeries::sample(EpochWide epoch, Cycle now)
{
    cap_.assertHeld();
    data.push_back(epoch);
    data.push_back(now);
    for (const auto &probe : probes)
        data.push_back(probe.fn());
    ++rows;
}

std::vector<std::string>
EpochSeries::columns() const
{
    cap_.assertHeld();
    std::vector<std::string> cols = {"epoch", "cycle"};
    for (const auto &probe : probes)
        cols.push_back(probe.name);
    return cols;
}

std::uint64_t
EpochSeries::value(std::size_t row, std::size_t col) const
{
    cap_.assertHeld();
    std::size_t stride = probes.size() + 2;
    nvo_assert(row < rows && col < stride, "series index out of range");
    return data[row * stride + col];
}

void
EpochSeries::writeCsv(std::ostream &os) const
{
    cap_.assertHeld();
    auto cols = columns();
    for (std::size_t c = 0; c < cols.size(); ++c)
        os << (c ? "," : "") << cols[c];
    os << "\n";
    std::size_t stride = probes.size() + 2;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < stride; ++c)
            os << (c ? "," : "") << data[r * stride + c];
        os << "\n";
    }
}

void
EpochSeries::writeJson(JsonWriter &w) const
{
    cap_.assertHeld();
    w.beginObject();
    w.key("columns").beginArray();
    for (const auto &col : columns())
        w.value(col);
    w.endArray();
    w.key("rows").beginArray();
    std::size_t stride = probes.size() + 2;
    for (std::size_t r = 0; r < rows; ++r) {
        w.beginArray();
        for (std::size_t c = 0; c < stride; ++c)
            w.value(data[r * stride + c]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

} // namespace obs
} // namespace nvo
