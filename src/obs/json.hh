/**
 * @file
 * Minimal streaming JSON writer shared by every machine-readable
 * exporter (Chrome trace files, stats_json, bench --json). Emits
 * strictly valid JSON: strings are escaped, commas are managed by a
 * nesting-state stack, and non-finite doubles degrade to null so a
 * NaN metric can never corrupt a result file.
 */

#ifndef NVO_OBS_JSON_HH
#define NVO_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nvo
{
namespace obs
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_) : os(os_) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a member key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** All containers closed (diagnostic for exporters). */
    bool balanced() const { return stack.empty(); }

    static std::string escape(const std::string &s);

  private:
    enum class Ctx : std::uint8_t
    {
        Object,
        Array,
    };

    /** Comma/indent bookkeeping before a value or key. */
    void preValue();

    std::ostream &os;
    std::vector<Ctx> stack;
    /** Whether the current container already holds a member. */
    std::vector<bool> hasMember;
    bool pendingKey = false;
};

} // namespace obs
} // namespace nvo

#endif // NVO_OBS_JSON_HH
