#include "obs/hist.hh"

#include <cmath>

namespace nvo
{
namespace obs
{

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p <= 0.0)
        return min();
    if (p >= 100.0)
        return max_;
    // Rank of the selected sample in the sorted order, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            std::uint64_t v = bucketLow(i);
            if (v < min_)
                v = min_;
            if (v > max_)
                v = max_;
            return v;
        }
    }
    return max_;
}

std::uint64_t
Histogram::bucketOccupancySum() const
{
    std::uint64_t s = 0;
    for (unsigned i = 0; i < numBuckets; ++i)
        s += buckets_[i];
    return s;
}

} // namespace obs
} // namespace nvo
