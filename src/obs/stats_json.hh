/**
 * @file
 * Machine-readable results: JSON serialization for RunStats plus the
 * whole-run report (`nvo_sim stats_json=...`) bundling the resolved
 * configuration, the headline counters, the NVM bandwidth series,
 * and the per-epoch metric time series into one stable, diffable
 * file.
 */

#ifndef NVO_OBS_STATS_JSON_HH
#define NVO_OBS_STATS_JSON_HH

#include <functional>
#include <ostream>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"

namespace nvo
{
namespace obs
{

class EpochSeries;
class JsonWriter;

/** Serialize @p stats as one JSON object value into @p w. */
void writeRunStats(JsonWriter &w, const RunStats &stats);

/** Serialize the resolved @p cfg as one JSON object value. */
void writeConfig(JsonWriter &w, const Config &cfg);

/**
 * The complete run report: scheme/workload labels, resolved config,
 * RunStats, and (when non-null) the per-epoch series. A non-null
 * @p policy_section callback contributes the `policy` object (the
 * harness passes PolicyEngine::writeJson when the adaptive policy
 * engine ran; a callback rather than a type keeps obs/ independent
 * of src/policy). Only set keys/sections appear, so runs without the
 * corresponding feature emit byte-identical files.
 */
void writeStatsJson(
    std::ostream &os, const std::string &scheme,
    const std::string &workload, const Config &cfg,
    const RunStats &stats, const EpochSeries *series = nullptr,
    double host_seconds = 0.0,
    const std::function<void(JsonWriter &)> &policy_section = {});

} // namespace obs
} // namespace nvo

#endif // NVO_OBS_STATS_JSON_HH
