/**
 * @file
 * Low-overhead typed event tracer.
 *
 * The simulator's protocol activity — epoch advances, store
 * evictions, tag-walker sweeps, OMC inserts and merges, page-pool
 * churn, NVM backlog stalls — is recorded into a fixed-capacity ring
 * of 32-byte typed records and exported as Chrome trace-event JSON,
 * so any run opens directly in chrome://tracing or Perfetto with one
 * track per VD, per OMC partition, plus cache / NVM / harness tracks.
 *
 * Cost model, mirroring NVO_AUDIT:
 *
 *  - `NVO_TRACE(cat, ev, track, cycle, a0, a1)` compiles to nothing
 *    when the build disables the CMake option `NVO_TRACE` (operands
 *    stay type-checked, never evaluated);
 *  - compiled in but with the category runtime-disabled (the default:
 *    the mask is empty until `trace.enabled` is set), a hook is one
 *    load and one branch on a bitmask — cheap enough for protocol
 *    paths, which is why hooks sit on eviction/merge/advance events
 *    and never on the per-access load/store path;
 *  - enabled, a hook appends one POD record to a preallocated ring,
 *    overwriting the oldest record when full (`recorded()` minus
 *    `size()` tells an exporter how many were dropped).
 *
 * The simulator is single-threaded, so one global tracer (configured
 * per-run from the Config: `trace.enabled`, `trace.cats`,
 * `trace.ring`) keeps hooks free of plumbing through a dozen
 * constructors. Components that have no notion of time (the page
 * pool) use `NVO_TRACE_NOW`, which stamps the harness-maintained
 * quantum clock instead of an explicit cycle.
 */

#ifndef NVO_OBS_TRACE_HH
#define NVO_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nvo
{

class Config;

namespace obs
{

/** True when the build compiles trace hooks in. */
#ifdef NVO_TRACE_ENABLED
constexpr bool traceCompiled = true;
#else
constexpr bool traceCompiled = false;
#endif

/** Event categories; each can be enabled independently at runtime. */
enum class Cat : std::uint32_t
{
    Epoch = 1u << 0,     ///< VD epoch advances, skew sync, context dumps
    Cache = 1u << 1,     ///< store-evictions, version seals, write backs
    Walker = 1u << 2,    ///< tag-walker sweeps, drains, min-ver reports
    Omc = 1u << 3,       ///< version inserts, buffer activity
    Merge = 1u << 4,     ///< table merges, late merges, rec-epoch, GC
    Pool = 1u << 5,      ///< page-pool alloc/free/extend
    Nvm = 1u << 6,       ///< device backlog stalls
    Harness = 1u << 7,   ///< simulator phase markers
    Fault = 1u << 8,     ///< fault injection, persist barriers/crashes
    Ledger = 1u << 9,    ///< version-lifecycle provenance transitions
    Repl = 1u << 10,     ///< epoch-delta shipping to the standby
    Par = 1u << 11,      ///< shard engine: token barriers, ring drains
    Policy = 1u << 12,   ///< adaptive policy engine decisions/actuations
};

constexpr std::uint32_t allCats = 0x1fffu;

/** Typed events. Metadata (name, category, arg names) in info(). */
enum class Ev : std::uint16_t
{
    // Epoch / VD.
    EpochAdvance,    ///< a0 = new epoch, a1 = 1 when Lamport-driven
    SkewForce,       ///< a0 = forced floor epoch, a1 = leader epoch
    ContextDump,     ///< a0 = bytes dumped
    // Cache / version protocol.
    VersionSeal,     ///< a0 = line addr, a1 = sealed OID
    StoreEvict,      ///< a0 = line addr, a1 = evicted OID
    CacheWriteBack,  ///< a0 = line addr, a1 = EvictReason
    // Tag walker.
    WalkScan,        ///< a0 = lines scanned, a1 = versions collected
    WalkDrain,       ///< a0 = versions drained this tick
    MinVerReport,    ///< a0 = certified min-ver
    // OMC / MNM.
    OmcInsert,       ///< a0 = line addr, a1 = version OID
    OmcBufferEvict,  ///< a0 = displaced line addr, a1 = its epoch
    OmcBufferDrain,  ///< a0 = pending writes flushed
    OmcOccupancy,    ///< counter: a0 = buffered pending writes
    TableMerge,      ///< a0 = merged table epoch
    LateMerge,       ///< a0 = line addr, a1 = version OID
    RecEpochAdvance, ///< a0 = new rec-epoch, a1 = previous
    Compaction,      ///< a0 = source epoch reclaimed
    // Page pool.
    PoolAlloc,       ///< a0 = sub-page addr, a1 = lines
    PoolFree,        ///< a0 = sub-page addr, a1 = lines
    PoolExtend,      ///< a0 = pages granted
    PoolPages,       ///< counter: a0 = pages in use
    // NVM device.
    NvmStall,        ///< a0 = stall cycles, a1 = backlog cycles
    NvmBacklog,      ///< counter: a0 = backlog cycles
    // Harness.
    Phase,           ///< a0 = PhaseId
    // Fault injection / persistence domain.
    FaultNvmError,   ///< a0 = hit number at the fault point
    FaultCrash,      ///< a0 = hit number at the fault point
    PersistBarrier,  ///< a0 = in-flight records made durable
    PersistTruncate, ///< a0 = in-flight records unwound by crash
    // Version-lifecycle provenance (obs/ledger).
    LedgerSeal,      ///< a0 = provenance id, a1 = line addr
    LedgerInsert,    ///< a0 = provenance id, a1 = LedgerCause
    LedgerMerge,     ///< a0 = provenance id, a1 = 1 when late-merged
    LedgerCompactMove, ///< a0 = provenance id, a1 = target epoch
    LedgerDrop,      ///< a0 = provenance id, a1 = version epoch
    // Replication (src/repl).
    ReplShipDelta,   ///< a0 = line addr, a1 = epoch
    ReplShipClose,   ///< a0 = delta count, a1 = epoch
    ReplShipLate,    ///< a0 = line addr, a1 = epoch amended
    ReplFrameDrop,   ///< a0 = frame id, a1 = retries so far
    ReplFrameCorrupt,///< a0 = frame id, a1 = retries so far
    ReplFrameRetry,  ///< a0 = frame id, a1 = retry number
    ReplFrameAck,    ///< a0 = frame id
    ReplEpochApplied,///< a0 = epoch, a1 = deltas applied
    ReplBackpressure,///< a0 = send-queue depth
    ReplCursorPersist, ///< a0 = cursor epoch, a1 = generation
    ReplResume,      ///< a0 = durable cursor, a1 = rec-epoch
    // Shard engine (src/par). Emitted by the coordinator only, after
    // the quantum barrier — the Tracer is not thread-safe.
    ParToken,        ///< a0 = barrier seq, a1 = 1 when poisoned
    ParXDrain,       ///< a0 = msgs drained, a1 = ring high water
    // Adaptive policy engine (src/policy). Coordinator-only, at
    // epoch boundaries observed from quantum barriers.
    PolicyDecision,  ///< a0 = controller id, a1 = controller output
    PolicyActuate,   ///< a0 = knob id, a1 = value applied
    NumEvents
};

/** Harness phase markers (Ev::Phase a0 values). */
enum class PhaseId : std::uint64_t
{
    RunBegin = 0,
    FinalizeBegin,
    FinalizeEnd,
};

struct EvInfo
{
    const char *name;
    Cat cat;
    /** Chrome-trace arg names; nullptr = arg unused. */
    const char *a0;
    const char *a1;
    /** Exported as a Chrome counter ("C") instead of an instant. */
    bool counter;
};

const EvInfo &info(Ev e);
const char *toString(Cat c);

/** Parse "all", "none", or a comma list of category names. */
std::uint32_t parseCats(const std::string &spec);

// --- Track ids (Chrome tid; one per hardware structure) -------------

constexpr std::uint32_t trackSim = 0;
constexpr std::uint32_t trackCache = 1;
constexpr std::uint32_t trackNvm = 2;
constexpr std::uint32_t trackRepl = 3;
constexpr std::uint32_t
trackVd(unsigned vd)
{
    return 16 + vd;
}
constexpr std::uint32_t
trackOmc(unsigned omc)
{
    return 256 + omc;
}
constexpr std::uint32_t
trackShard(unsigned shard)
{
    return 512 + shard;
}

std::string trackName(std::uint32_t track);

class Tracer
{
  public:
    /** One recorded event; POD, 32 bytes. */
    struct Rec
    {
        Cycle cycle;
        std::uint64_t a0;
        std::uint64_t a1;
        std::uint32_t track;
        Ev ev;
        std::uint16_t pad = 0;
    };

    /** Hot-path gate: is @p c enabled? */
    bool
    wants(Cat c) const
    {
        return (catMask & static_cast<std::uint32_t>(c)) != 0;
    }

    void record(Ev e, std::uint32_t track, Cycle cycle,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0);

    /**
     * (Re)configure from @p cfg and clear the ring: `trace.enabled`
     * (default off — the mask stays empty and hooks cost one branch),
     * `trace.cats` (default "all"), `trace.ring` (default 65536
     * records).
     */
    void configure(const Config &cfg);

    /** Direct runtime controls (tests, tools). */
    void setMask(std::uint32_t mask) { catMask = mask; }
    void setRingCapacity(std::size_t records);
    void reset();

    std::uint32_t mask() const { return catMask; }

    /** Records currently held (<= ring capacity). */
    std::size_t size() const;
    /** Records ever recorded since the last reset. */
    std::uint64_t recorded() const { return total; }
    /** Records overwritten by ring wrap. */
    std::uint64_t dropped() const { return total - size(); }
    std::size_t capacity() const { return ring.size(); }

    /** Visit held records oldest-first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::size_t n = size();
        std::size_t start = total > ring.size() ? head : 0;
        for (std::size_t i = 0; i < n; ++i)
            fn(ring[(start + i) % ring.size()]);
    }

    /**
     * Quantum clock for hooks without a time source (NVO_TRACE_NOW);
     * the System refreshes it every quantum.
     */
    void setNow(Cycle c) { nowCycle = c; }
    Cycle now() const { return nowCycle; }

    /**
     * Export as Chrome trace-event JSON (the object form with a
     * "traceEvents" array plus thread-name metadata, so Perfetto
     * labels one track per VD / OMC / device). @p ts is cycles
     * reported as microseconds; wall time is simulated, not host.
     */
    void exportChrome(std::ostream &os) const;

  private:
    std::vector<Rec> ring;
    std::size_t head = 0;        ///< next write position
    std::uint64_t total = 0;
    std::uint32_t catMask = 0;
    Cycle nowCycle = 0;
};

/** The process-wide tracer (single-threaded simulator). */
Tracer &tracer();

} // namespace obs
} // namespace nvo

#ifdef NVO_TRACE_ENABLED
#define NVO_TRACE(cat, ev, track, cycle, a0, a1)                       \
    do {                                                               \
        ::nvo::obs::Tracer &t_ = ::nvo::obs::tracer();                 \
        if (t_.wants(::nvo::obs::Cat::cat))                            \
            t_.record(::nvo::obs::Ev::ev, (track), (cycle), (a0),      \
                      (a1));                                           \
    } while (0)
/** Variant stamping the harness quantum clock (no local time). */
#define NVO_TRACE_NOW(cat, ev, track, a0, a1)                          \
    do {                                                               \
        ::nvo::obs::Tracer &t_ = ::nvo::obs::tracer();                 \
        if (t_.wants(::nvo::obs::Cat::cat))                            \
            t_.record(::nvo::obs::Ev::ev, (track), t_.now(), (a0),     \
                      (a1));                                           \
    } while (0)
#else
/* Compiled out: operands stay type-checked but are never evaluated. */
#define NVO_TRACE(cat, ev, track, cycle, a0, a1)                       \
    do {                                                               \
        if (false) {                                                   \
            static_cast<void>(::nvo::obs::Cat::cat);                   \
            static_cast<void>(::nvo::obs::Ev::ev);                     \
            static_cast<void>(track);                                  \
            static_cast<void>(cycle);                                  \
            static_cast<void>(a0);                                     \
            static_cast<void>(a1);                                     \
        }                                                              \
    } while (0)
#define NVO_TRACE_NOW(cat, ev, track, a0, a1)                          \
    do {                                                               \
        if (false) {                                                   \
            static_cast<void>(::nvo::obs::Cat::cat);                   \
            static_cast<void>(::nvo::obs::Ev::ev);                     \
            static_cast<void>(track);                                  \
            static_cast<void>(a0);                                     \
            static_cast<void>(a1);                                     \
        }                                                              \
    } while (0)
#endif

#endif // NVO_OBS_TRACE_HH
