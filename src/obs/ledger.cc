#include "obs/ledger.hh"

#include "common/config.hh"
#include "common/log.hh"
#include "obs/json.hh"

namespace nvo
{
namespace obs
{

const char *
toString(LedgerCause c)
{
    switch (c) {
      case LedgerCause::Capacity: return "capacity";
      case LedgerCause::Coherence: return "coherence";
      case LedgerCause::TagWalk: return "tag-walk";
      case LedgerCause::StoreEvict: return "store-evict";
      case LedgerCause::EpochFlush: return "epoch-flush";
      case LedgerCause::CompactionCopy: return "compaction-copy";
      case LedgerCause::SubpageReloc: return "subpage-reloc";
      default: return "?";
    }
}

const char *
toString(VerState s)
{
    switch (s) {
      case VerState::Sealed: return "sealed";
      case VerState::Inserted: return "inserted";
      case VerState::Merged: return "merged";
      case VerState::Compacted: return "compacted";
      case VerState::Dropped: return "dropped";
      default: return "?";
    }
}

void
Ledger::configure(const Config &cfg)
{
    reset();
    armed_ = ledgerCompiled && cfg.getBool("ledger.enabled", false);
    // has()-gated so untenanted runs register no tenant.* defaults
    // (the resolved-config dump must stay byte-identical).
    testUnaccounted_ =
        cfg.has("tenant.enabled") &&
        cfg.getBool("tenant.test_unaccounted", false);
}

void
Ledger::setArmed(bool on)
{
    armed_ = ledgerCompiled && on;
}

void
Ledger::reset()
{
    nextProv = 1;
    sealed_ = 0;
    inserted_ = 0;
    merged_ = 0;
    lateMerged_ = 0;
    compacted_ = 0;
    dropped_ = 0;
    overwrites_ = 0;
    liveInserted_ = 0;
    bytesByCause.fill(0);
    bytesByAsid_.clear();
    entries.clear();
}

Ledger::Entry &
Ledger::upsert(Addr line_addr, EpochWide oid, bool &created)
{
    auto [it, inserted_new] =
        entries.try_emplace({line_addr, oid}, Entry{});
    created = inserted_new;
    if (inserted_new)
        it->second.prov = nextProv++;
    return it->second;
}

void
Ledger::terminate(Entry &e, VerState to)
{
    if (e.state == VerState::Inserted)
        --liveInserted_;
    e.state = to;
}

void
Ledger::seal(unsigned vd, Addr line_addr, EpochWide oid, Cycle now)
{
    bool created = false;
    Entry &e = upsert(line_addr, oid, created);
    if (!created)
        return;   // re-seal after a cache-to-cache migration
    ++sealed_;
    NVO_TRACE(Ledger, LedgerSeal, trackVd(vd), now, e.prov,
              line_addr);
}

void
Ledger::insertVersion(unsigned omc, Addr line_addr, EpochWide oid,
                      LedgerCause cause, Cycle now)
{
    bool created = false;
    Entry &e = upsert(line_addr, oid, created);
    if (!created && e.state != VerState::Sealed) {
        // The per-epoch table overwrites the (line, epoch) slot in
        // place; the prior content was superseded, not leaked. For a
        // terminated entry (a late re-arrival after its epoch merged)
        // the state stays terminal — the late-merge or stale-drop
        // path re-terminates it right behind this insert.
        ++e.overwrites;
        ++overwrites_;
        return;
    }
    e.state = VerState::Inserted;
    e.cause = cause;
    ++inserted_;
    ++liveInserted_;
    NVO_TRACE(Ledger, LedgerInsert, trackOmc(omc), now, e.prov,
              static_cast<std::uint64_t>(cause));
}

void
Ledger::merged(unsigned omc, Addr line_addr, EpochWide oid, bool late,
               Cycle now)
{
    bool created = false;
    Entry &e = upsert(line_addr, oid, created);
    if (e.state == VerState::Merged)
        return;
    terminate(e, VerState::Merged);
    ++merged_;
    if (late)
        ++lateMerged_;
    NVO_TRACE(Ledger, LedgerMerge, trackOmc(omc), now, e.prov,
              late ? 1 : 0);
}

void
Ledger::compacted(unsigned omc, Addr line_addr, EpochWide oid,
                  EpochWide target, Cycle now)
{
    bool created = false;
    Entry &e = upsert(line_addr, oid, created);
    if (e.state == VerState::Compacted)
        return;
    terminate(e, VerState::Compacted);
    ++compacted_;
    NVO_TRACE(Ledger, LedgerCompactMove, trackOmc(omc), now, e.prov,
              target);
}

void
Ledger::dropped(unsigned omc, Addr line_addr, EpochWide oid, Cycle now)
{
    bool created = false;
    Entry &e = upsert(line_addr, oid, created);
    // A compacted version's old master entry is still unreferenced
    // afterwards; that drop is bookkeeping of the same move, not a
    // second lifecycle exit.
    if (e.state == VerState::Dropped || e.state == VerState::Compacted)
        return;
    terminate(e, VerState::Dropped);
    ++dropped_;
    NVO_TRACE(Ledger, LedgerDrop, trackOmc(omc), now, e.prov, oid);
}

void
Ledger::dataWrite(LedgerCause cause, std::uint64_t bytes,
                  tenant::Asid asid)
{
    bytesByCause[static_cast<std::size_t>(cause)] += bytes;
    // Seeded attribution-leak bug: reloc bytes vanish from the
    // per-tenant tallies, so they no longer sum to the total.
    if (testUnaccounted_ && cause == LedgerCause::SubpageReloc)
        return;
    bytesByAsid_[asid] += bytes;
}

std::uint64_t
Ledger::dataBytesOf(tenant::Asid asid) const
{
    auto it = bytesByAsid_.find(asid);
    return it == bytesByAsid_.end() ? 0 : it->second;
}

std::uint64_t
Ledger::dataBytesTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t b : bytesByCause)
        total += b;
    return total;
}

void
Ledger::forEachLeak(
    const std::function<void(Addr, EpochWide, const Entry &)> &fn)
    const
{
    for (const auto &kv : entries)
        if (kv.second.state == VerState::Inserted)
            fn(kv.first.first, kv.first.second, kv.second);
}

void
Ledger::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("enabled", armed_);
    w.kv("provs_assigned", provsAssigned());
    w.kv("sealed", sealed_);
    w.kv("inserted", inserted_);
    w.kv("merged", merged_);
    w.kv("late_merged", lateMerged_);
    w.kv("compacted", compacted_);
    w.kv("dropped", dropped_);
    w.kv("overwrites", overwrites_);
    w.kv("leaked", liveInserted_);
    w.key("leaked_samples").beginArray();
    std::size_t listed = 0;
    forEachLeak([&](Addr a, EpochWide e, const Entry &entry) {
        if (listed >= 16)
            return;
        ++listed;
        w.beginObject();
        w.kv("addr", a);
        w.kv("epoch", e);
        w.kv("prov", entry.prov);
        w.kv("cause", toString(entry.cause));
        w.endObject();
    });
    w.endArray();
    w.key("data_bytes_by_cause").beginObject();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(LedgerCause::NumCauses); ++i)
        w.kv(toString(static_cast<LedgerCause>(i)), bytesByCause[i]);
    w.endObject();
    // Emitted only when tenant traffic exists: untenanted runs keep
    // the pre-tenant JSON byte-for-byte.
    bool tenanted = false;
    for (const auto &kv : bytesByAsid_)
        if (kv.first != 0)
            tenanted = true;
    if (tenanted) {
        w.key("data_bytes_by_asid").beginObject();
        for (const auto &kv : bytesByAsid_)
            w.kv(std::to_string(kv.first), kv.second);
        w.endObject();
    }
    w.kv("data_bytes_total", dataBytesTotal());
    w.endObject();
}

Ledger &
ledger()
{
    static Ledger global;
    return global;
}

} // namespace obs
} // namespace nvo
