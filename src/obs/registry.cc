#include "obs/registry.hh"

#include <fstream>
#include <ostream>

#include "common/config.hh"
#include "obs/json.hh"

namespace nvo
{
namespace obs
{

thread_local unsigned MetricRegistry::tlsSlot_ = 0;

MetricRegistry &
metricRegistry()
{
    static MetricRegistry r;
    return r;
}

void
MetricRegistry::configure(const Config &cfg)
{
    // Probe before reading: an unset key must not enter the resolved
    // config dump, or every pre-metrics baseline would shift.
    bool enabled = cfg.has("metrics.enabled") &&
                   cfg.getBool("metrics.enabled", false);
    armed_ = metricCompiled && enabled;
    shards_ = 0;
    for (Counter &c : counters_) {
        c.slots.assign(1, 0);
    }
    for (HistMetric &h : hists_) {
        h.slots.assign(1, Histogram());
    }
    gauges_.clear();
}

void
MetricRegistry::setArmed(bool on)
{
    armed_ = on && metricCompiled;
}

void
MetricRegistry::setShards(unsigned shards)
{
    shards_ = shards;
    for (Counter &c : counters_)
        c.slots.resize(shards + 1, 0);
    for (HistMetric &h : hists_)
        h.slots.resize(shards + 1);
}

void
MetricRegistry::mergeShards()
{
    for (Counter &c : counters_) {
        for (std::size_t s = 1; s < c.slots.size(); ++s) {
            c.slots[0] += c.slots[s];
            c.slots[s] = 0;
        }
    }
    for (HistMetric &h : hists_) {
        for (std::size_t s = 1; s < h.slots.size(); ++s) {
            h.slots[0].merge(h.slots[s]);
            h.slots[s].reset();
        }
    }
}

Counter *
MetricRegistry::addCounter(const std::string &name, MetricScope scope)
{
    auto it = counterByName_.find(name);
    if (it != counterByName_.end())
        return it->second;
    counters_.push_back(Counter{name, scope,
                                std::vector<std::uint64_t>(
                                    shards_ + 1, 0)});
    Counter *c = &counters_.back();
    counterByName_[name] = c;
    return c;
}

HistMetric *
MetricRegistry::addHist(const std::string &name, MetricScope scope)
{
    auto it = histByName_.find(name);
    if (it != histByName_.end())
        return it->second;
    hists_.push_back(HistMetric{name, scope,
                                std::vector<Histogram>(shards_ + 1)});
    HistMetric *h = &hists_.back();
    histByName_[name] = h;
    return h;
}

void
MetricRegistry::addGauge(const std::string &name,
                         std::function<std::uint64_t()> fn,
                         MetricScope scope)
{
    gauges_[name] = Gauge{scope, std::move(fn)};
}

std::uint64_t
MetricRegistry::total(const Counter *c) const
{
    std::uint64_t t = 0;
    for (std::uint64_t v : c->slots)
        t += v;
    return t;
}

Histogram
MetricRegistry::merged(const HistMetric *h) const
{
    Histogram m;
    for (const Histogram &s : h->slots)
        m.merge(s);
    return m;
}

std::size_t
MetricRegistry::simRegistered() const
{
    std::size_t n = 0;
    for (const Counter &c : counters_)
        if (c.scope == MetricScope::Sim)
            ++n;
    for (const HistMetric &h : hists_)
        if (h.scope == MetricScope::Sim)
            ++n;
    for (const auto &kv : gauges_)
        if (kv.second.scope == MetricScope::Sim)
            ++n;
    return n;
}

namespace
{

void
writeHistSummary(JsonWriter &w, const Histogram &m, bool buckets)
{
    w.beginObject();
    w.kv("count", m.count());
    w.kv("sum", m.sum());
    w.kv("min", m.min());
    w.kv("max", m.max());
    w.kv("p50", m.percentile(50.0));
    w.kv("p90", m.percentile(90.0));
    w.kv("p99", m.percentile(99.0));
    if (buckets) {
        w.key("buckets").beginObject();
        for (unsigned i = 0; i < Histogram::numBuckets; ++i)
            if (m.bucket(i) != 0)
                w.kv(std::to_string(i), m.bucket(i));
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("enabled", armed_);
    w.kv("registered",
         static_cast<std::uint64_t>(simRegistered()));
    w.key("counters").beginObject();
    for (const auto &kv : counterByName_)
        if (kv.second->scope == MetricScope::Sim)
            w.kv(kv.first, total(kv.second));
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &kv : gauges_)
        if (kv.second.scope == MetricScope::Sim && kv.second.fn)
            w.kv(kv.first, kv.second.fn());
    w.endObject();
    w.key("hists").beginObject();
    for (const auto &kv : histByName_) {
        if (kv.second->scope != MetricScope::Sim)
            continue;
        w.key(kv.first);
        writeHistSummary(w, merged(kv.second), true);
    }
    w.endObject();
    w.endObject();
}

namespace
{

/** Prometheus metric name: [a-zA-Z0-9_] with the nvo_ prefix. */
std::string
promName(const std::string &name)
{
    std::string out = "nvo_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

void
MetricRegistry::writePrometheus(std::ostream &os) const
{
    for (const auto &kv : counterByName_) {
        std::string n = promName(kv.first);
        os << "# TYPE " << n << "_total counter\n";
        os << n << "_total " << total(kv.second) << "\n";
    }
    for (const auto &kv : gauges_) {
        if (!kv.second.fn)
            continue;
        std::string n = promName(kv.first);
        os << "# TYPE " << n << " gauge\n";
        os << n << " " << kv.second.fn() << "\n";
    }
    for (const auto &kv : histByName_) {
        Histogram m = merged(kv.second);
        std::string n = promName(kv.first);
        os << "# TYPE " << n << " summary\n";
        os << n << "{quantile=\"0.5\"} " << m.percentile(50.0) << "\n";
        os << n << "{quantile=\"0.9\"} " << m.percentile(90.0) << "\n";
        os << n << "{quantile=\"0.99\"} " << m.percentile(99.0)
           << "\n";
        os << n << "_sum " << m.sum() << "\n";
        os << n << "_count " << m.count() << "\n";
        os << "# TYPE " << n << "_max gauge\n";
        os << n << "_max " << m.max() << "\n";
    }
}

void
MetricRegistry::writeJsonlLine(std::ostream &os, EpochWide epoch,
                               Cycle now) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("format", "nvo-metrics-v1");
    w.kv("epoch", epoch);
    w.kv("cycle", now);
    w.key("counters").beginObject();
    for (const auto &kv : counterByName_)
        w.kv(kv.first, total(kv.second));
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &kv : gauges_)
        if (kv.second.fn)
            w.kv(kv.first, kv.second.fn());
    w.endObject();
    w.key("hists").beginObject();
    for (const auto &kv : histByName_) {
        w.key(kv.first);
        writeHistSummary(w, merged(kv.second), false);
    }
    w.endObject();
    w.endObject();
    os << "\n";
}

void
MetricExporter::configure(const Config &cfg)
{
    intervalEpochs_ = cfg.has("metrics.interval_epochs")
                          ? cfg.getU64("metrics.interval_epochs", 1)
                          : 1;
    if (intervalEpochs_ == 0)
        intervalEpochs_ = 1;
    promPath_ = cfg.has("metrics.prom_out")
                    ? cfg.getStr("metrics.prom_out", "")
                    : "";
    jsonlPath_ = cfg.has("metrics.jsonl_out")
                     ? cfg.getStr("metrics.jsonl_out", "")
                     : "";
    exportedOnce_ = false;
    lastEpoch_ = 0;
}

bool
MetricExporter::enabled() const
{
    return metricRegistry().armed() &&
           (!promPath_.empty() || !jsonlPath_.empty());
}

void
MetricExporter::onEpochBoundary(EpochWide epoch, Cycle now)
{
    if (!enabled())
        return;
    if (exportedOnce_ && epoch - lastEpoch_ < intervalEpochs_)
        return;
    exportNow(epoch, now);
}

void
MetricExporter::finalExport(EpochWide epoch, Cycle now)
{
    if (!enabled())
        return;
    exportNow(epoch, now);
}

void
MetricExporter::exportNow(EpochWide epoch, Cycle now)
{
    if (!promPath_.empty()) {
        std::ofstream os(promPath_, std::ios::trunc);
        if (os)
            metricRegistry().writePrometheus(os);
    }
    if (!jsonlPath_.empty()) {
        std::ofstream os(jsonlPath_, std::ios::app);
        if (os)
            metricRegistry().writeJsonlLine(os, epoch, now);
    }
    exportedOnce_ = true;
    lastEpoch_ = epoch;
}

} // namespace obs
} // namespace nvo
