#include "obs/trace.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "obs/json.hh"

namespace nvo
{
namespace obs
{

namespace
{

constexpr std::size_t numEvents =
    static_cast<std::size_t>(Ev::NumEvents);

/* Indexed by Ev; keep in declaration order. */
constexpr std::array<EvInfo, numEvents> evTable = {{
    {"epoch_advance", Cat::Epoch, "epoch", "lamport", false},
    {"skew_force", Cat::Epoch, "floor", "leader", false},
    {"context_dump", Cat::Epoch, "bytes", nullptr, false},
    {"version_seal", Cat::Cache, "addr", "oid", false},
    {"store_evict", Cat::Cache, "addr", "oid", false},
    {"cache_writeback", Cat::Cache, "addr", "reason", false},
    {"walk_scan", Cat::Walker, "lines_scanned", "versions", false},
    {"walk_drain", Cat::Walker, "versions", nullptr, false},
    {"min_ver_report", Cat::Walker, "min_ver", nullptr, false},
    {"omc_insert", Cat::Omc, "addr", "oid", false},
    {"omc_buffer_evict", Cat::Omc, "addr", "epoch", false},
    {"omc_buffer_drain", Cat::Omc, "flushed", nullptr, false},
    {"omc_occupancy", Cat::Omc, "value", nullptr, true},
    {"table_merge", Cat::Merge, "epoch", nullptr, false},
    {"late_merge", Cat::Merge, "addr", "oid", false},
    {"rec_epoch_advance", Cat::Merge, "rec_epoch", "previous", false},
    {"compaction", Cat::Merge, "source_epoch", nullptr, false},
    {"pool_alloc", Cat::Pool, "sub_page", "lines", false},
    {"pool_free", Cat::Pool, "sub_page", "lines", false},
    {"pool_extend", Cat::Pool, "pages", nullptr, false},
    {"pool_pages", Cat::Pool, "value", nullptr, true},
    {"nvm_stall", Cat::Nvm, "stall", "backlog", false},
    {"nvm_backlog", Cat::Nvm, "value", nullptr, true},
    {"phase", Cat::Harness, "phase", nullptr, false},
    {"fault_nvm_error", Cat::Fault, "hit", nullptr, false},
    {"fault_crash", Cat::Fault, "hit", nullptr, false},
    {"persist_barrier", Cat::Fault, "records", nullptr, false},
    {"persist_truncate", Cat::Fault, "records", nullptr, false},
    {"ledger_seal", Cat::Ledger, "prov", "addr", false},
    {"ledger_insert", Cat::Ledger, "prov", "cause", false},
    {"ledger_merge", Cat::Ledger, "prov", "late", false},
    {"ledger_compact_move", Cat::Ledger, "prov", "target_epoch",
     false},
    {"ledger_drop", Cat::Ledger, "prov", "epoch", false},
    {"repl_ship_delta", Cat::Repl, "addr", "epoch", false},
    {"repl_ship_close", Cat::Repl, "deltas", "epoch", false},
    {"repl_ship_late", Cat::Repl, "addr", "epoch", false},
    {"repl_frame_drop", Cat::Repl, "frame", "retries", false},
    {"repl_frame_corrupt", Cat::Repl, "frame", "retries", false},
    {"repl_frame_retry", Cat::Repl, "frame", "retry", false},
    {"repl_frame_ack", Cat::Repl, "frame", nullptr, false},
    {"repl_epoch_applied", Cat::Repl, "epoch", "deltas", false},
    {"repl_backpressure", Cat::Repl, "queue", nullptr, false},
    {"repl_cursor_persist", Cat::Repl, "cursor", "generation",
     false},
    {"repl_resume", Cat::Repl, "cursor", "rec_epoch", false},
    {"par_token", Cat::Par, "seq", "poisoned", false},
    {"par_xdrain", Cat::Par, "msgs", "high_water", false},
    {"policy_decision", Cat::Policy, "controller", "output", false},
    {"policy_actuate", Cat::Policy, "knob", "value", false},
}};

} // namespace

const EvInfo &
info(Ev e)
{
    auto idx = static_cast<std::size_t>(e);
    nvo_assert(idx < numEvents, "unknown trace event");
    return evTable[idx];
}

const char *
toString(Cat c)
{
    switch (c) {
      case Cat::Epoch: return "epoch";
      case Cat::Cache: return "cache";
      case Cat::Walker: return "walker";
      case Cat::Omc: return "omc";
      case Cat::Merge: return "merge";
      case Cat::Pool: return "pool";
      case Cat::Nvm: return "nvm";
      case Cat::Harness: return "harness";
      case Cat::Fault: return "fault";
      case Cat::Ledger: return "ledger";
      case Cat::Repl: return "repl";
      case Cat::Par: return "par";
      case Cat::Policy: return "policy";
      default: return "?";
    }
}

std::uint32_t
parseCats(const std::string &spec)
{
    if (spec.empty() || spec == "none")
        return 0;
    if (spec == "all")
        return allCats;
    std::uint32_t mask = 0;
    std::istringstream in(spec);
    std::string name;
    while (std::getline(in, name, ',')) {
        bool found = false;
        for (std::uint32_t bit = 1; bit <= allCats; bit <<= 1) {
            if (name == toString(static_cast<Cat>(bit))) {
                mask |= bit;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("trace.cats: unknown category '%s'", name.c_str());
    }
    return mask;
}

std::string
trackName(std::uint32_t track)
{
    if (track == trackSim)
        return "sim";
    if (track == trackCache)
        return "cache";
    if (track == trackNvm)
        return "nvm";
    if (track == trackRepl)
        return "repl";
    if (track >= 512)
        return "shard" + std::to_string(track - 512);
    if (track >= 256)
        return "omc" + std::to_string(track - 256);
    if (track >= 16)
        return "vd" + std::to_string(track - 16);
    return "track" + std::to_string(track);
}

void
Tracer::record(Ev e, std::uint32_t track, Cycle cycle,
               std::uint64_t a0, std::uint64_t a1)
{
    if (ring.empty())
        return;
    Rec &r = ring[head];
    r.cycle = cycle;
    r.a0 = a0;
    r.a1 = a1;
    r.track = track;
    r.ev = e;
    head = (head + 1) % ring.size();
    ++total;
}

void
Tracer::setRingCapacity(std::size_t records)
{
    ring.assign(std::max<std::size_t>(records, 1), Rec{});
    head = 0;
    total = 0;
}

void
Tracer::reset()
{
    head = 0;
    total = 0;
}

std::size_t
Tracer::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(total, ring.size()));
}

void
Tracer::configure(const Config &cfg)
{
    bool on = cfg.getBool("trace.enabled", false);
    catMask = on ? parseCats(cfg.getStr("trace.cats", "all")) : 0;
    std::size_t cap = static_cast<std::size_t>(
        cfg.getU64("trace.ring", 1ull << 16));
    if (cap != ring.size())
        setRingCapacity(cap);
    else
        reset();
}

void
Tracer::exportChrome(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData").beginObject();
    w.kv("clock", "simulated cycles (reported as us)");
    w.kv("recorded", recorded());
    w.kv("dropped", dropped());
    w.endObject();

    w.key("traceEvents").beginArray();

    // Thread-name metadata so Perfetto labels the tracks.
    std::vector<std::uint32_t> tracks;
    forEach([&tracks](const Rec &r) {
        if (std::find(tracks.begin(), tracks.end(), r.track) ==
            tracks.end())
            tracks.push_back(r.track);
    });
    std::sort(tracks.begin(), tracks.end());
    for (std::uint32_t t : tracks) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", std::uint64_t(0));
        w.kv("tid", std::uint64_t(t));
        w.key("args").beginObject();
        w.kv("name", trackName(t));
        w.endObject();
        w.endObject();
    }

    forEach([&w](const Rec &r) {
        const EvInfo &ei = info(r.ev);
        w.beginObject();
        w.kv("name", ei.name);
        w.kv("cat", toString(ei.cat));
        w.kv("ph", ei.counter ? "C" : "i");
        if (!ei.counter)
            w.kv("s", "t");
        w.kv("ts", static_cast<double>(r.cycle));
        w.kv("pid", std::uint64_t(0));
        w.kv("tid", std::uint64_t(r.track));
        w.key("args").beginObject();
        if (ei.counter) {
            w.kv("value", r.a0);
        } else {
            if (ei.a0)
                w.kv(ei.a0, r.a0);
            if (ei.a1)
                w.kv(ei.a1, r.a1);
        }
        w.endObject();
        w.endObject();
    });

    w.endArray();
    w.endObject();
    os << "\n";
    nvo_assert(w.balanced(), "trace export left JSON unbalanced");
}

Tracer &
tracer()
{
    static Tracer global;
    return global;
}

} // namespace obs
} // namespace nvo
