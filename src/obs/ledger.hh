/**
 * @file
 * Version-lifecycle provenance ledger.
 *
 * NVOverlay's correctness story is a lifecycle story: every sealed
 * version evicted from a VD is inserted into an OMC's per-epoch
 * table, merged into the master table when the recoverable epoch
 * passes it (or late-merged if it arrives behind rec-epoch), and is
 * eventually compacted forward or dropped when a newer version
 * supersedes it. The ledger tracks that state machine per version —
 * keyed by (line address, epoch OID), stamped with a compact
 * provenance ID assigned at seal/insert time — and tallies every NVM
 * data write against the lifecycle cause that issued it (the five
 * EvictReason causes plus compaction copies and sub-page
 * relocations). Two invariants fall out mechanically:
 *
 *  - completeness: after a clean finalize no entry may remain in the
 *    Inserted state — a non-terminated version is a snapshot leak
 *    (the observational twin of the NVO_AUDIT merge-completeness
 *    sweep, checkable in release builds and offline from stats JSON);
 *  - attribution: the per-cause byte counters sum exactly to
 *    RunStats::nvmWriteBytes[Data], because MnmBackend::deviceWrite
 *    is the only data-write path and each call names its cause.
 *
 * Cost model, mirroring the tracer: hooks go through `NVO_LEDGER`,
 * which compiles to nothing when the build disables `NVO_TRACE`
 * (operands type-checked, never evaluated); compiled in but disarmed
 * (the default — `ledger.enabled` unset), a hook is one load and one
 * branch; armed, it is a hash-map upsert per version transition.
 * Transitions also emit Cat::Ledger trace events carrying the
 * provenance ID, so a Chrome trace can replay a single version's
 * journey across tracks.
 */

#ifndef NVO_OBS_LEDGER_HH
#define NVO_OBS_LEDGER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"
#include "tenant/asid.hh"

namespace nvo
{

class Config;

namespace obs
{

class JsonWriter;

/** True when the build compiles ledger (and trace) hooks in. */
constexpr bool ledgerCompiled = traceCompiled;

/** Lifecycle cause of an NVM data write. The first five mirror
 *  EvictReason (what pushed the version out of the hierarchy); the
 *  last two are backend-internal writes. */
enum class LedgerCause : unsigned
{
    Capacity = 0,     ///< replacement eviction reached the OMC
    Coherence,        ///< downgrade/invalidation write back
    TagWalk,          ///< background tag-walker drain
    StoreEvict,       ///< store-eviction of an immutable version
    EpochFlush,       ///< synchronous epoch-boundary flush
    CompactionCopy,   ///< GC copied a live version forward
    SubpageReloc,     ///< sub-page growth relocated versions
    NumCauses
};

const char *toString(LedgerCause c);

/** Map a hierarchy eviction reason onto its ledger cause. */
constexpr LedgerCause
causeOf(EvictReason why)
{
    return static_cast<LedgerCause>(static_cast<unsigned>(why));
}

/** Per-version lifecycle state. Inserted is the only non-terminal
 *  state a finished run may not leave behind. */
enum class VerState : unsigned char
{
    Sealed,      ///< provenance assigned at the VD, not yet at an OMC
    Inserted,    ///< mapped by a per-epoch table, awaiting merge
    Merged,      ///< reachable through the master table
    Compacted,   ///< copied forward by GC; storage reclaimed
    Dropped,     ///< superseded/overwritten; never recoverable again
};

const char *toString(VerState s);

class Ledger
{
  public:
    struct Entry
    {
        std::uint64_t prov = 0;
        VerState state = VerState::Sealed;
        LedgerCause cause = LedgerCause::EpochFlush;
        std::uint32_t overwrites = 0;
    };

    /** Hot-path gate for NVO_LEDGER. */
    bool armed() const { return armed_; }

    /**
     * (Re)configure from @p cfg and clear all state: `ledger.enabled`
     * (default off). Arming requires a build with trace hooks
     * compiled in — without them no transition would ever be
     * recorded, so the ledger stays disarmed rather than reporting
     * every version as leaked.
     */
    void configure(const Config &cfg);

    /** Direct runtime control (tests, tools). */
    void setArmed(bool on);

    /** Drop every entry and counter; keeps the armed flag. Called on
     *  crash resets — volatile lifecycle state dies with the run. */
    void reset();

    // --- Lifecycle transitions (call through NVO_LEDGER) -----------

    /** A VD sealed an immutable version (store-eviction / in-place L2
     *  seal). Assigns the provenance ID; re-seals are idempotent. */
    void seal(unsigned vd, Addr line_addr, EpochWide oid, Cycle now);

    /** The version reached an OMC's per-epoch table. A repeat insert
     *  of the same (line, epoch) overwrites the slot in place. */
    void insertVersion(unsigned omc, Addr line_addr, EpochWide oid,
                       LedgerCause cause, Cycle now);

    /** The version became reachable through the master table (rec-
     *  epoch merge, or the late-merge path when @p late). */
    void merged(unsigned omc, Addr line_addr, EpochWide oid, bool late,
                Cycle now);

    /** GC copied the version forward into epoch @p target. */
    void compacted(unsigned omc, Addr line_addr, EpochWide oid,
                   EpochWide target, Cycle now);

    /** The version was superseded or its arrival was already stale;
     *  it can never be read by recovery again. */
    void dropped(unsigned omc, Addr line_addr, EpochWide oid,
                 Cycle now);

    /** Attribute @p bytes of NVM data traffic to @p cause, and to
     *  tenant @p asid (the tag of the line that produced the write;
     *  0 = untenanted). Per-ASID tallies partition the same total the
     *  per-cause tallies do, so both must sum exactly to
     *  RunStats::nvmWriteBytes[Data]. */
    void dataWrite(LedgerCause cause, std::uint64_t bytes,
                   tenant::Asid asid = 0);

    // --- Queries ----------------------------------------------------

    /** Versions still in the Inserted state (leaks once finalized). */
    std::uint64_t liveInserted() const { return liveInserted_; }

    std::uint64_t provsAssigned() const { return nextProv - 1; }
    std::uint64_t sealedCount() const { return sealed_; }
    std::uint64_t insertedCount() const { return inserted_; }
    std::uint64_t mergedCount() const { return merged_; }
    std::uint64_t lateMergedCount() const { return lateMerged_; }
    std::uint64_t compactedCount() const { return compacted_; }
    std::uint64_t droppedCount() const { return dropped_; }
    std::uint64_t overwriteCount() const { return overwrites_; }

    std::uint64_t
    dataBytes(LedgerCause c) const
    {
        return bytesByCause[static_cast<std::size_t>(c)];
    }
    std::uint64_t dataBytesTotal() const;

    /** Data bytes attributed to one tenant. */
    std::uint64_t dataBytesOf(tenant::Asid asid) const;

    /**
     * TEST ONLY (tenant.test_unaccounted): skip the per-ASID tally on
     * sub-page relocation writes — a seeded attribution-leak bug the
     * nvo_analyze per-tenant exact-sum check must catch.
     */
    void setTestUnaccounted(bool on) { testUnaccounted_ = on; }

    /** Visit every non-terminated (Inserted) entry. */
    void forEachLeak(
        const std::function<void(Addr, EpochWide, const Entry &)> &fn)
        const;

    /** JSON object value embedded in stats_json ("ledger" section). */
    void writeJson(JsonWriter &w) const;

  private:
    struct KeyHash
    {
        std::size_t
        operator()(const std::pair<Addr, EpochWide> &k) const
        {
            std::uint64_t h = k.first * 0x9e3779b97f4a7c15ull;
            h ^= k.second + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    Entry &upsert(Addr line_addr, EpochWide oid, bool &created);
    void terminate(Entry &e, VerState to);

    bool armed_ = false;
    std::uint64_t nextProv = 1;
    std::uint64_t sealed_ = 0;
    std::uint64_t inserted_ = 0;
    std::uint64_t merged_ = 0;
    std::uint64_t lateMerged_ = 0;
    std::uint64_t compacted_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t overwrites_ = 0;
    std::uint64_t liveInserted_ = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(LedgerCause::NumCauses)>
        bytesByCause{};
    /** Ordered so the JSON emission is deterministic. Only emitted
     *  when some write carried a nonzero ASID, keeping untenanted
     *  stats JSON byte-identical to the pre-tenant schema. */
    std::map<tenant::Asid, std::uint64_t> bytesByAsid_;
    bool testUnaccounted_ = false;
    std::unordered_map<std::pair<Addr, EpochWide>, Entry, KeyHash>
        entries;
};

/** The process-wide ledger (single-threaded simulator). */
Ledger &ledger();

} // namespace obs
} // namespace nvo

#ifdef NVO_TRACE_ENABLED
/** Invoke a Ledger method iff the ledger is armed:
 *  NVO_LEDGER(insertVersion(omc, addr, oid, cause, now)). */
#define NVO_LEDGER(call)                                               \
    do {                                                               \
        ::nvo::obs::Ledger &nl_ = ::nvo::obs::ledger();                \
        if (nl_.armed())                                               \
            nl_.call;                                                  \
    } while (0)
#else
/* Compiled out: the call stays type-checked but is never evaluated. */
#define NVO_LEDGER(call)                                               \
    do {                                                               \
        if (false)                                                     \
            ::nvo::obs::ledger().call;                                 \
    } while (0)
#endif

#endif // NVO_OBS_LEDGER_HH
