/**
 * @file
 * Unified metric registry: named counters, gauges, and histograms
 * with static registration sites and deterministic shard merging.
 *
 * Components register their metrics once (typically in their
 * constructor, which runs during System::build after the registry is
 * configured) and keep the returned handle; the hot path records
 * through the NVO_METRIC macro below, which mirrors the tracer's and
 * ledger's cost model exactly: compiled out under NVO_METRIC=OFF
 * (operands type-checked, never evaluated), one load and one branch
 * when compiled in but disarmed (`metrics.enabled` unset — the
 * default), and a couple of stores when armed.
 *
 * Sharding. Under the par engine every metric holds one slot per
 * shard plus a main slot. A worker's token turn runs inside a
 * MetricSlotScope that routes its records into the shard's own slot
 * (the token protocol's release/acquire hand-offs order those writes
 * exactly as they order RunStats mutations), and the coordinator
 * folds the shard slots into the main slot at every quantum barrier
 * — in shard order, so the merged values are byte-identical to a
 * sequential (`par.shards=0`) run of the same workload.
 *
 * Scope. Sim-scope metrics measure simulated behaviour and must be
 * deterministic; they are the only ones embedded in stats JSON (the
 * `metrics` section `nvo_analyze` validates). Host-scope metrics
 * measure the host-side engine itself (ring drains, token-wait
 * spins) and legitimately vary run to run, so they appear only in
 * the Prometheus/JSONL exports.
 *
 * Registrations persist for the life of the process (handles stay
 * valid across System rebuilds); configure() zeroes every value and
 * drops gauges, whose closures capture per-build component state.
 */

#ifndef NVO_OBS_REGISTRY_HH
#define NVO_OBS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/hist.hh"

namespace nvo
{

class Config;

namespace obs
{

class JsonWriter;

/** True when the build compiles metric hooks in. */
#ifdef NVO_METRIC_ENABLED
constexpr bool metricCompiled = true;
#else
constexpr bool metricCompiled = false;
#endif

/** What a metric measures — see the file comment. */
enum class MetricScope : unsigned char
{
    Sim,    ///< simulated behaviour; deterministic; in stats JSON
    Host,   ///< host engine behaviour; exports only
};

/** A monotonically increasing count, one slot per shard. Record
 *  through MetricRegistry::inc (via NVO_METRIC); never construct one
 *  directly outside the registry (the `metric-registry` lint rule). */
struct Counter
{
    std::string name;
    MetricScope scope = MetricScope::Sim;
    std::vector<std::uint64_t> slots;
};

/** A distribution (obs/hist.hh), one slot per shard. */
struct HistMetric
{
    std::string name;
    MetricScope scope = MetricScope::Sim;
    std::vector<Histogram> slots;
};

/** A value polled at snapshot time on the coordinator thread; no
 *  merge semantics needed. Re-registered every build. */
struct Gauge
{
    MetricScope scope = MetricScope::Sim;
    std::function<std::uint64_t()> fn;
};

class MetricRegistry
{
  public:
    /** Hot-path gate for NVO_METRIC. */
    bool armed() const { return armed_; }

    /**
     * (Re)configure from @p cfg: `metrics.enabled` (default off; only
     * probed when explicitly set, so untouched configs dump
     * byte-identically). Zeroes every counter and histogram, drops
     * all gauges, and resets the shard count to zero. Runs at the
     * top of System::build, before components register.
     */
    void configure(const Config &cfg);

    /** Direct runtime control (tests, replica quiesce). */
    void setArmed(bool on);

    /** Size every metric for @p shards shard slots plus the main
     *  slot. 0 = sequential (main slot only). */
    void setShards(unsigned shards);

    /** Fold shard slots 1..N into the main slot, in shard order.
     *  Coordinator-only, at quantum barriers. */
    void mergeShards();

    // --- Registration (build time; handles live forever) -----------

    /** Register (or look up) a counter. A second registration under
     *  the same name returns the existing handle. */
    Counter *addCounter(const std::string &name,
                        MetricScope scope = MetricScope::Sim);

    /** Register (or look up) a histogram. */
    HistMetric *addHist(const std::string &name,
                        MetricScope scope = MetricScope::Sim);

    /** Register a polled gauge; re-registering replaces the closure
     *  (gauges capture per-build state). */
    void addGauge(const std::string &name,
                  std::function<std::uint64_t()> fn,
                  MetricScope scope = MetricScope::Sim);

    // --- Hot path (call through NVO_METRIC) ------------------------

    void
    inc(Counter *c, std::uint64_t d = 1)
    {
        c->slots[slotOf(c->slots.size())] += d;
    }

    void
    record(HistMetric *h, std::uint64_t v)
    {
        h->slots[slotOf(h->slots.size())].record(v);
    }

    // --- Snapshots --------------------------------------------------

    /** Current total of @p c across every slot (slot order, so the
     *  reading is deterministic whether or not a merge ran). */
    std::uint64_t total(const Counter *c) const;

    /** All slots of @p h merged into one view. */
    Histogram merged(const HistMetric *h) const;

    /** Number of Sim-scope metrics (counters + gauges + histograms)
     *  currently registered — the `registered` field nvo_analyze
     *  checks the snapshot against. */
    std::size_t simRegistered() const;

    /** Stats-JSON `metrics` section: Sim scope only. */
    void writeJson(JsonWriter &w) const;

    /** Prometheus text exposition (all scopes; histograms as
     *  summaries with p50/p90/p99 quantiles). */
    void writePrometheus(std::ostream &os) const;

    /** One `nvo-metrics-v1` JSONL snapshot line (all scopes). */
    void writeJsonlLine(std::ostream &os, EpochWide epoch,
                        Cycle now) const;

  private:
    friend class MetricSlotScope;

    /** Worker-local slot, clamped so a metric registered after
     *  setShards (or a stray thread) still lands somewhere valid. */
    static unsigned
    slotOf(std::size_t have)
    {
        unsigned s = tlsSlot_;
        return s < have ? s : 0;
    }

    static thread_local unsigned tlsSlot_;

    bool armed_ = false;
    unsigned shards_ = 0;
    /** Deques: handle pointers must survive later registrations. */
    std::deque<Counter> counters_;
    std::deque<HistMetric> hists_;
    std::map<std::string, Counter *> counterByName_;
    std::map<std::string, HistMetric *> histByName_;
    std::map<std::string, Gauge> gauges_;
};

/** The process-wide registry. */
MetricRegistry &metricRegistry();

/**
 * RAII: route this thread's metric records into shard slot
 * @p shard + 1 for the scope's lifetime. The par engine opens one
 * inside each token turn (engine.cc runShard); everything outside a
 * scope records into the main slot.
 */
class MetricSlotScope
{
  public:
    explicit MetricSlotScope(unsigned shard)
        : prev_(MetricRegistry::tlsSlot_)
    {
        MetricRegistry::tlsSlot_ = shard + 1;
    }
    ~MetricSlotScope() { MetricRegistry::tlsSlot_ = prev_; }
    MetricSlotScope(const MetricSlotScope &) = delete;
    MetricSlotScope &operator=(const MetricSlotScope &) = delete;

  private:
    unsigned prev_;
};

/**
 * Periodic exporter: rewrites a Prometheus scrape file and appends
 * JSONL snapshots every `metrics.interval_epochs` epoch boundaries.
 * Owned by the harness; a no-op unless the registry is armed and at
 * least one output path is configured.
 */
class MetricExporter
{
  public:
    /** `metrics.interval_epochs` (default 1), `metrics.prom_out`,
     *  `metrics.jsonl_out` — all probed with has() first. */
    void configure(const Config &cfg);

    bool enabled() const;

    /** Epoch-boundary hook; exports when the interval elapsed. */
    void onEpochBoundary(EpochWide epoch, Cycle now);

    /** Unconditional export after finalize (run end). */
    void finalExport(EpochWide epoch, Cycle now);

  private:
    void exportNow(EpochWide epoch, Cycle now);

    std::uint64_t intervalEpochs_ = 1;
    std::string promPath_;
    std::string jsonlPath_;
    bool exportedOnce_ = false;
    EpochWide lastEpoch_ = 0;
};

} // namespace obs
} // namespace nvo

#ifdef NVO_METRIC_ENABLED
/** Invoke a MetricRegistry method iff the registry is armed:
 *  NVO_METRIC(record(h_walk_, depth)). */
#define NVO_METRIC(call)                                               \
    do {                                                               \
        ::nvo::obs::MetricRegistry &nm_ =                              \
            ::nvo::obs::metricRegistry();                              \
        if (nm_.armed())                                               \
            nm_.call;                                                  \
    } while (0)
#else
/* Compiled out: the call stays type-checked but is never evaluated. */
#define NVO_METRIC(call)                                               \
    do {                                                               \
        if (false)                                                     \
            ::nvo::obs::metricRegistry().call;                         \
    } while (0)
#endif

#endif // NVO_OBS_REGISTRY_HH
