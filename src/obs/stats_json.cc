#include "obs/stats_json.hh"

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/ledger.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"

namespace nvo
{
namespace obs
{

void
writeConfig(JsonWriter &w, const Config &cfg)
{
    w.beginObject();
    for (const auto &kv : cfg.dump())
        w.kv(kv.first, kv.second);
    w.endObject();
}

void
writeRunStats(JsonWriter &w, const RunStats &stats)
{
    w.beginObject();
    w.kv("cycles", stats.cycles);
    w.kv("instructions", stats.instructions);
    w.kv("refs", stats.refs);
    w.kv("loads", stats.loads);
    w.kv("stores", stats.stores);
    w.kv("barrier_stall_cycles", stats.barrierStallCycles);

    w.key("cache").beginObject();
    w.kv("l1_hits", stats.l1Hits).kv("l1_misses", stats.l1Misses);
    w.kv("l2_hits", stats.l2Hits).kv("l2_misses", stats.l2Misses);
    w.kv("llc_hits", stats.llcHits).kv("llc_misses", stats.llcMisses);
    w.endObject();

    w.key("epochs").beginObject();
    w.kv("advances", stats.epochAdvances);
    w.kv("lamport_advances", stats.lamportAdvances);
    w.kv("context_dumps", stats.contextDumps);
    w.endObject();

    w.key("nvm_write_bytes").beginObject();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(NvmWriteKind::NumKinds); ++i)
        w.kv(toString(static_cast<NvmWriteKind>(i)),
             stats.nvmWriteBytes[i]);
    w.kv("total", stats.totalNvmWriteBytes());
    w.endObject();
    w.kv("nvm_write_ops", stats.nvmWriteOps);
    w.kv("nvm_read_bytes", stats.nvmReadBytes);
    w.kv("dram_read_bytes", stats.dramReadBytes);
    w.kv("dram_write_bytes", stats.dramWriteBytes);

    w.key("evictions").beginObject();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(EvictReason::NumReasons); ++i)
        w.kv(toString(static_cast<EvictReason>(i)),
             stats.evictReason[i]);
    w.endObject();

    w.key("nvoverlay").beginObject();
    w.kv("omc_buffer_hits", stats.omcBufferHits);
    w.kv("omc_buffer_misses", stats.omcBufferMisses);
    w.kv("master_table_bytes", stats.masterTableBytes);
    w.kv("master_mapped_lines", stats.masterMappedLines);
    w.kv("epoch_table_bytes", stats.epochTableBytes);
    w.kv("pool_pages_in_use", stats.poolPagesInUse);
    w.kv("gc_compactions", stats.gcCompactions);
    w.kv("gc_bytes_copied", stats.gcBytesCopied);
    w.kv("tag_walk_lines_scanned", stats.tagWalkLinesScanned);
    w.kv("tag_walk_write_backs", stats.tagWalkWriteBacks);
    w.endObject();

    w.key("repl").beginObject();
    w.kv("frames_sent", stats.repl.framesSent);
    w.kv("frames_retried", stats.repl.framesRetried);
    w.kv("frames_dropped", stats.repl.framesDropped);
    w.kv("frames_corrupted", stats.repl.framesCorrupted);
    w.kv("frames_acked", stats.repl.framesAcked);
    w.kv("frames_deduped", stats.repl.framesDeduped);
    w.kv("wire_bytes", stats.repl.wireBytes);
    w.kv("delta_bytes", stats.repl.deltaBytes);
    w.kv("epochs_shipped", stats.repl.epochsShipped);
    w.kv("epochs_applied", stats.repl.epochsApplied);
    w.kv("late_shipped", stats.repl.lateShipped);
    w.kv("decode_resyncs", stats.repl.decodeResyncs);
    w.kv("decode_crc_errors", stats.repl.decodeCrcErrors);
    w.kv("backpressure_stalls", stats.repl.backpressureStalls);
    w.kv("cursor_persists", stats.repl.cursorPersists);
    w.kv("resumes", stats.repl.resumes);
    w.kv("reshipped_epochs", stats.repl.reshippedEpochs);
    w.kv("send_queue_peak", stats.repl.sendQueuePeak);
    w.kv("applied_rec_epoch", stats.repl.appliedRecEpoch);
    w.kv("cursor_epoch", stats.repl.cursorEpoch);
    w.endObject();

    w.key("nvm_bandwidth").beginObject();
    w.kv("bucket_cycles", stats.nvmBandwidth.bucketCycles());
    w.kv("peak_bytes", stats.nvmBandwidth.peakBytes());
    w.kv("mean_bytes", stats.nvmBandwidth.meanBytes());
    w.key("bytes_per_bucket").beginArray();
    for (std::uint64_t b : stats.nvmBandwidth.buckets())
        w.value(b);
    w.endArray();
    w.endObject();

    w.key("extra").beginObject();
    for (const auto &kv : stats.extra)
        w.kv(kv.first, kv.second);
    w.endObject();

    w.endObject();
}

void
writeStatsJson(std::ostream &os, const std::string &scheme,
               const std::string &workload, const Config &cfg,
               const RunStats &stats, const EpochSeries *series,
               double host_seconds,
               const std::function<void(JsonWriter &)> &policy_section)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("format", "nvo-stats-v1");
    w.kv("scheme", scheme);
    w.kv("workload", workload);
    w.kv("host_seconds", host_seconds);
    w.key("config");
    writeConfig(w, cfg);
    w.key("stats");
    writeRunStats(w, stats);
    w.key("ledger");
    obs::ledger().writeJson(w);
    // Sim-scope registry snapshot: only on armed runs, so every
    // pre-metrics stats file (and baseline) is byte-identical.
    if (obs::metricRegistry().armed()) {
        w.key("metrics");
        obs::metricRegistry().writeJson(w);
    }
    if (series) {
        w.key("epoch_series");
        series->writeJson(w);
    }
    if (policy_section) {
        w.key("policy");
        policy_section(w);
    }
    w.endObject();
    os << "\n";
    nvo_assert(w.balanced(), "stats export left JSON unbalanced");
}

} // namespace obs
} // namespace nvo
