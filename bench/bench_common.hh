/**
 * @file
 * Shared plumbing for the figure-reproduction benches: the scaled
 * default run length, per-workload op multipliers (so heavyweight
 * kernels finish in comparable wall time), and row helpers.
 *
 * Every bench accepts NVO_OPS / NVO_EPOCH_STORES / NVO_SEED
 * environment overrides and "key=value" command-line arguments.
 */

#ifndef NVO_BENCH_BENCH_COMMON_HH
#define NVO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"

namespace nvo
{
namespace bench
{

/** Default measured ops per thread for figure benches (scaled-down
 *  runs; see DESIGN.md on scaling). */
constexpr std::uint64_t defaultOps = 6000;

/** Heavier kernels get fewer ops so every cell costs similar time. */
inline std::uint64_t
opsFor(const std::string &workload, std::uint64_t base)
{
    if (workload == "kmeans")
        return base / 8;
    if (workload == "labyrinth")
        return base / 4;   // very long path commits per op
    if (workload == "rbtree" || workload == "genome")
        return base / 2;
    return base;
}

inline Config
benchConfig(int argc, char **argv)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("wl.ops", defaultOps);
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    applyOverrides(cfg, args);
    return cfg;
}

inline Config
forWorkload(Config cfg, const std::string &workload)
{
    cfg.set("wl.ops", opsFor(workload, cfg.getU64("wl.ops",
                                                  defaultOps)));
    return cfg;
}

} // namespace bench
} // namespace nvo

#endif // NVO_BENCH_BENCH_COMMON_HH
