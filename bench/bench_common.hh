/**
 * @file
 * Shared plumbing for the figure-reproduction benches: the scaled
 * default run length, per-workload op multipliers (so heavyweight
 * kernels finish in comparable wall time), and row helpers.
 *
 * Every bench accepts NVO_OPS / NVO_EPOCH_STORES / NVO_SEED
 * environment overrides, "key=value" command-line arguments, and
 * `--json <path>` to additionally write the run's results as a
 * machine-readable file (schema "nvo-bench-v1": bench name, resolved
 * config, and one {workload, scheme, metric, value} row per measured
 * cell).
 */

#ifndef NVO_BENCH_BENCH_COMMON_HH
#define NVO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"
#include "obs/json.hh"
#include "obs/stats_json.hh"

namespace nvo
{
namespace bench
{

/** Default measured ops per thread for figure benches (scaled-down
 *  runs; see DESIGN.md on scaling). */
constexpr std::uint64_t defaultOps = 6000;

/** Heavier kernels get fewer ops so every cell costs similar time. */
inline std::uint64_t
opsFor(const std::string &workload, std::uint64_t base)
{
    if (workload == "kmeans")
        return base / 8;
    if (workload == "labyrinth")
        return base / 4;   // very long path commits per op
    if (workload == "rbtree" || workload == "genome")
        return base / 2;
    return base;
}

/**
 * Pull `--json <path>` / `--json=<path>` out of argv (compacting the
 * remaining arguments in place so benchConfig's key=value parser
 * never sees the flag). Returns "" when absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string path;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return path;
}

/**
 * Pull `--jobs <n>` / `--jobs=<n>` out of argv (same compaction as
 * extractJsonPath). Returns 1 when absent. Benches hand the value to
 * par::forkMap to fan independent cells across worker processes;
 * results are merged in cell order, so the printed tables and the
 * --json rows are identical for every job count.
 */
inline unsigned
extractJobs(int &argc, char **argv)
{
    unsigned jobs = 1;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 0));
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return jobs == 0 ? 1 : jobs;
}

inline Config
benchConfig(int argc, char **argv)
{
    setQuiet(true);
    Config cfg = defaultConfig();
    cfg.set("wl.ops", defaultOps);
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    applyOverrides(cfg, args);
    return cfg;
}

/**
 * Machine-readable bench results. Collect one row per measured cell
 * while the tables print as usual; write() emits the file and is a
 * no-op when the run had no `--json`.
 */
class JsonReport
{
  public:
    JsonReport(std::string bench_name, std::string path)
        : name(std::move(bench_name)), path_(std::move(path))
    {
    }

    bool enabled() const { return !path_.empty(); }

    void
    setConfig(const Config &cfg)
    {
        cfg_ = cfg;
        haveCfg = true;
    }

    void
    add(const std::string &workload, const std::string &scheme,
        const std::string &metric, double value)
    {
        rows.push_back({workload, scheme, metric, value});
    }

    void
    write() const
    {
        if (path_.empty())
            return;
        std::ofstream os(path_);
        if (!os)
            fatal("cannot open --json file '%s'", path_.c_str());
        obs::JsonWriter w(os);
        w.beginObject();
        w.kv("format", "nvo-bench-v1");
        w.kv("bench", name);
        if (haveCfg) {
            w.key("config");
            obs::writeConfig(w, cfg_);
        }
        w.key("results").beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.kv("workload", r.workload);
            w.kv("scheme", r.scheme);
            w.kv("metric", r.metric);
            w.kv("value", r.value);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        nvo_assert(w.balanced(), "bench report left JSON unbalanced");
        std::printf("json -> %s\n", path_.c_str());
    }

  private:
    struct Row
    {
        std::string workload;
        std::string scheme;
        std::string metric;
        double value;
    };

    std::string name;
    std::string path_;
    Config cfg_;
    bool haveCfg = false;
    std::vector<Row> rows;
};

inline Config
forWorkload(Config cfg, const std::string &workload)
{
    cfg.set("wl.ops", opsFor(workload, cfg.getU64("wl.ops",
                                                  defaultOps)));
    return cfg;
}

} // namespace bench
} // namespace nvo

#endif // NVO_BENCH_BENCH_COMMON_HH
