/**
 * @file
 * Micro-benchmarks (google-benchmark) for the MNM hot paths: per-
 * epoch table insertion, master-table insert/lookup, page-pool
 * allocation, and OMC buffer insertion — the operations on the OMC's
 * critical path for every version write back.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/rng.hh"
#include "nvoverlay/epoch_table.hh"
#include "nvoverlay/master_table.hh"
#include "nvoverlay/omc_buffer.hh"
#include "nvoverlay/page_pool.hh"

namespace
{

using namespace nvo;

constexpr Addr poolBase = 1ull << 40;

void
BM_EpochTableInsert(benchmark::State &state)
{
    PagePool pool(poolBase, 1ull << 30);
    EpochTable table(1, pool, EpochTable::Params{});
    EpochTable::Sinks sinks;
    LineData content;
    Rng rng(1);
    SeqNo seq = 0;
    for (auto _ : state) {
        Addr a = lineAlign(rng.below(1ull << 28));
        benchmark::DoNotOptimize(
            table.insert(a, ++seq, content, sinks));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochTableInsert);

void
BM_EpochTableLookup(benchmark::State &state)
{
    PagePool pool(poolBase, 1ull << 30);
    EpochTable table(1, pool, EpochTable::Params{});
    EpochTable::Sinks sinks;
    LineData content;
    Rng fill(2);
    for (int i = 0; i < 100000; ++i)
        table.insert(lineAlign(fill.below(1ull << 26)), i, content,
                     sinks);
    Rng rng(3);
    for (auto _ : state) {
        Addr a = lineAlign(rng.below(1ull << 26));
        benchmark::DoNotOptimize(table.lookupNvm(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochTableLookup);

void
BM_MasterTableInsert(benchmark::State &state)
{
    MasterTable mt;
    Rng rng(4);
    for (auto _ : state) {
        Addr a = lineAlign(rng.below(1ull << 30));
        benchmark::DoNotOptimize(mt.insert(tenant::keyOf(a), poolBase, 1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MasterTableInsert);

void
BM_MasterTableLookup(benchmark::State &state)
{
    MasterTable mt;
    Rng fill(5);
    for (int i = 0; i < 200000; ++i)
        mt.insert(tenant::keyOf(lineAlign(fill.below(1ull << 28))), poolBase + i, 1);
    Rng rng(6);
    for (auto _ : state) {
        Addr a = lineAlign(rng.below(1ull << 28));
        benchmark::DoNotOptimize(mt.lookup(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MasterTableLookup);

void
BM_PagePoolAllocFree(benchmark::State &state)
{
    PagePool pool(poolBase, 1ull << 26);
    unsigned lines = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Addr a = pool.allocLines(lines, 0);
        benchmark::DoNotOptimize(a);
        pool.freeLines(a, lines, 0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PagePoolAllocFree)->Arg(1)->Arg(4)->Arg(64);

void
BM_OmcBufferInsert(benchmark::State &state)
{
    OmcBuffer buf(OmcBuffer::Params{});
    Rng rng(7);
    for (auto _ : state) {
        Addr a = lineAlign(rng.below(1ull << 24));
        benchmark::DoNotOptimize(buf.insert(a, 1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmcBufferInsert);

/**
 * Console reporter that additionally captures every finished run
 * into the shared bench JSON report, so micro_mnm honours the same
 * `--json <path>` contract as the figure benches.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonCaptureReporter(bench::JsonReport &report)
        : report_(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            report_.add("mnm", run.benchmark_name(), "ns_per_op",
                        run.GetAdjustedRealTime());
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                report_.add("mnm", run.benchmark_name(),
                            "items_per_second",
                            static_cast<double>(it->second));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonReport &report_;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("micro_mnm",
                             bench::extractJsonPath(argc, argv));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonCaptureReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    report.write();
    benchmark::Shutdown();
    return 0;
}
