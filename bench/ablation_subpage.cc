/**
 * @file
 * Ablation (beyond the paper): sparse sub-page storage policy. The
 * MNM stores sparse overlay pages compactly in power-of-two
 * sub-pages (Sec. V-C); this sweep compares initial sizes and growth
 * factors against "always allocate a full page", measuring pool
 * storage against the relocation write cost the compaction trades
 * for it.
 */

#include <array>

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

/** One measured cell shipped back from a forkMap worker. */
struct Cell
{
    std::uint64_t poolBytes = 0;
    std::uint64_t relocBytes = 0;
    std::uint64_t nvmWriteBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_subpage",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "vacation");

    struct Policy
    {
        unsigned init, growth;
        const char *label;
    };
    const std::array<Policy, 4> policies = {
        Policy{1, 2, "1/x2"}, Policy{4, 4, "4/x4"},
        Policy{16, 4, "16/x4"}, Policy{64, 4, "64(full)"}};

    // Each policy is an independent simulation, so the sweep fans
    // across --jobs worker processes and merges in cell order: same
    // table and JSON rows for any job count.
    std::vector<std::string> payloads = par::forkMap(
        static_cast<unsigned>(policies.size()), jobs,
        [&](unsigned t) {
            const Policy &pol = policies[t];
            Config c = wcfg;
            c.set("mnm.subpage_init_lines", std::uint64_t(pol.init));
            c.set("mnm.subpage_growth", std::uint64_t(pol.growth));
            System sys(c, "nvoverlay", "vacation");
            sys.run();
            auto &scheme =
                dynamic_cast<NVOverlayScheme &>(sys.scheme());
            std::uint64_t pool_bytes = 0;
            for (unsigned o = 0; o < scheme.backend().numOmcs(); ++o)
                pool_bytes +=
                    scheme.backend().pool(o).bytesAllocated();
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%llu %llu %llu",
                static_cast<unsigned long long>(pool_bytes),
                static_cast<unsigned long long>(
                    sys.stats().extra["subpage_reloc_bytes"]),
                static_cast<unsigned long long>(
                    sys.stats().totalNvmWriteBytes()));
            return std::string(buf);
        });
    std::array<Cell, 4> cells;
    for (unsigned t = 0; t < policies.size(); ++t) {
        unsigned long long pool = 0, reloc = 0, wr = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu %llu", &pool,
                        &reloc, &wr) != 3)
            fatal("ablation_subpage: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {pool, reloc, wr};
    }

    std::printf("Ablation — sparse sub-page policy (vacation)\n");
    TablePrinter table({"init/grow", "pool-MB", "reloc-MB",
                        "nvm-MB"},
                       12);
    table.printHeader();

    for (unsigned t = 0; t < policies.size(); ++t) {
        const Policy &pol = policies[t];
        const Cell &c = cells[t];
        report.add(pol.label, "nvoverlay", "pool_bytes",
                   static_cast<double>(c.poolBytes));
        report.add(pol.label, "nvoverlay", "reloc_bytes",
                   static_cast<double>(c.relocBytes));
        report.add(pol.label, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(c.nvmWriteBytes));
        table.printRow(
            {pol.label, TablePrinter::num(c.poolBytes / 1e6, 2),
             TablePrinter::num(c.relocBytes / 1e6, 2),
             TablePrinter::num(c.nvmWriteBytes / 1e6, 1)});
    }
    report.write();
    return 0;
}
