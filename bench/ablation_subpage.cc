/**
 * @file
 * Ablation (beyond the paper): sparse sub-page storage policy. The
 * MNM stores sparse overlay pages compactly in power-of-two
 * sub-pages (Sec. V-C); this sweep compares initial sizes and growth
 * factors against "always allocate a full page", measuring pool
 * storage against the relocation write cost the compaction trades
 * for it.
 */

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_subpage",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "vacation");

    std::printf("Ablation — sparse sub-page policy (vacation)\n");
    TablePrinter table({"init/grow", "pool-MB", "reloc-MB",
                        "nvm-MB"},
                       12);
    table.printHeader();

    struct Policy
    {
        unsigned init, growth;
        const char *label;
    };
    const Policy policies[] = {
        {1, 2, "1/x2"}, {4, 4, "4/x4"}, {16, 4, "16/x4"},
        {64, 4, "64(full)"}};

    for (const auto &pol : policies) {
        Config c = wcfg;
        c.set("mnm.subpage_init_lines", std::uint64_t(pol.init));
        c.set("mnm.subpage_growth", std::uint64_t(pol.growth));
        System sys(c, "nvoverlay", "vacation");
        sys.run();
        auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
        std::uint64_t pool_bytes = 0;
        for (unsigned o = 0; o < scheme.backend().numOmcs(); ++o)
            pool_bytes += scheme.backend().pool(o).bytesAllocated();
        report.add(pol.label, "nvoverlay", "pool_bytes",
                   static_cast<double>(pool_bytes));
        report.add(pol.label, "nvoverlay", "reloc_bytes",
                   static_cast<double>(
                       sys.stats().extra["subpage_reloc_bytes"]));
        report.add(pol.label, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(
                       sys.stats().totalNvmWriteBytes()));
        table.printRow(
            {pol.label, TablePrinter::num(pool_bytes / 1e6, 2),
             TablePrinter::num(
                 sys.stats().extra["subpage_reloc_bytes"] / 1e6, 2),
             TablePrinter::num(
                 sys.stats().totalNvmWriteBytes() / 1e6, 1)});
    }
    report.write();
    return 0;
}
