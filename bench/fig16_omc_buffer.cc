/**
 * @file
 * Figure 16: the battery-backed OMC buffer on ART with a single
 * epoch throughout execution (stress test for absorbing redundant
 * same-epoch write backs).
 *
 * Expected shape: with the buffer, NVM writes drop sharply (the
 * paper reports a 74.8% buffer hit rate and a 41% speedup in the
 * bandwidth-limited regime).
 */

#include "bench_common.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig16_omc_buffer",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    // Redundant same-epoch write backs accumulate with run length;
    // give this (two-run) figure 4x ops.
    cfg.set("wl.ops",
            cfg.getU64("wl.ops", bench::defaultOps) * 4);
    Config wcfg = bench::forWorkload(cfg, "art");
    // Single epoch for the whole run (the paper's setup).
    wcfg.set("epoch.stores_global", std::uint64_t(1) << 40);
    // Bandwidth-limited regime so the write savings translate into
    // cycles: single DIMM and write-dense cores.
    wcfg.set("nvm.banks", std::uint64_t(4));
    wcfg.set("wl.gap", std::uint64_t(8));
    wcfg.set("nvm.buffer_mb", std::uint64_t(4));
    report.setConfig(wcfg);

    std::printf("Figure 16 — OMC buffer (ART, one epoch, constrained "
                "NVM)\n");
    TablePrinter table({"config", "cycles", "nvm-writes-M", "hit-rate"},
                       14);
    table.printHeader();

    auto no_buf = runExperiment(wcfg, "nvoverlay", "art");
    report.add("art", "no-buffer", "cycles",
               static_cast<double>(no_buf.stats.cycles));
    report.add("art", "no-buffer", "nvm_write_ops",
               static_cast<double>(no_buf.stats.nvmWriteOps));
    table.printRow(
        {"no-buffer",
         TablePrinter::num(static_cast<double>(no_buf.stats.cycles),
                           0),
         TablePrinter::num(no_buf.stats.nvmWriteOps / 1e6, 2), "-"});

    Config bcfg = wcfg;
    bcfg.set("mnm.use_buffer", "true");
    bcfg.set("mnm.buffer_mb", std::uint64_t(32));   // LLC-sized
    auto buf = runExperiment(bcfg, "nvoverlay", "art");
    double hits = static_cast<double>(buf.stats.omcBufferHits);
    double total = hits + buf.stats.omcBufferMisses;
    report.add("art", "with-buffer", "cycles",
               static_cast<double>(buf.stats.cycles));
    report.add("art", "with-buffer", "nvm_write_ops",
               static_cast<double>(buf.stats.nvmWriteOps));
    report.add("art", "with-buffer", "hit_rate_pct",
               total ? 100.0 * hits / total : 0.0);
    report.add("art", "with-buffer", "norm_cycles",
               static_cast<double>(buf.stats.cycles) /
                   no_buf.stats.cycles);
    table.printRow(
        {"with-buffer",
         TablePrinter::num(static_cast<double>(buf.stats.cycles), 0),
         TablePrinter::num(buf.stats.nvmWriteOps / 1e6, 2),
         TablePrinter::num(total ? 100.0 * hits / total : 0.0, 1)});

    std::printf("\nnormalized cycles: %.2f   write reduction: "
                "%.1f%%\n",
                static_cast<double>(buf.stats.cycles) /
                    no_buf.stats.cycles,
                100.0 *
                    (1.0 -
                     static_cast<double>(buf.stats.nvmWriteOps) /
                         no_buf.stats.nvmWriteOps));
    report.write();
    return 0;
}
