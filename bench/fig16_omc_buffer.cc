/**
 * @file
 * Figure 16: the battery-backed OMC buffer on ART with a single
 * epoch throughout execution (stress test for absorbing redundant
 * same-epoch write backs).
 *
 * Expected shape: with the buffer, NVM writes drop sharply (the
 * paper reports a 74.8% buffer hit rate and a 41% speedup in the
 * bandwidth-limited regime).
 */

#include "bench_common.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

/** One measured cell shipped back from a forkMap worker. */
struct Cell
{
    std::uint64_t cycles = 0;
    std::uint64_t nvmWriteOps = 0;
    std::uint64_t bufferHits = 0;
    std::uint64_t bufferMisses = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig16_omc_buffer",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    // Redundant same-epoch write backs accumulate with run length;
    // give this (two-run) figure 4x ops.
    cfg.set("wl.ops",
            cfg.getU64("wl.ops", bench::defaultOps) * 4);
    Config wcfg = bench::forWorkload(cfg, "art");
    // Single epoch for the whole run (the paper's setup).
    wcfg.set("epoch.stores_global", std::uint64_t(1) << 40);
    // Bandwidth-limited regime so the write savings translate into
    // cycles: single DIMM and write-dense cores.
    wcfg.set("nvm.banks", std::uint64_t(4));
    wcfg.set("wl.gap", std::uint64_t(8));
    wcfg.set("nvm.buffer_mb", std::uint64_t(4));
    report.setConfig(wcfg);

    std::printf("Figure 16 — OMC buffer (ART, one epoch, constrained "
                "NVM)\n");
    TablePrinter table({"config", "cycles", "nvm-writes-M", "hit-rate"},
                       14);
    table.printHeader();

    // Cell 0: no buffer; cell 1: LLC-sized buffer. The two runs are
    // independent, so they fan across --jobs worker processes and
    // merge in cell order (identical output for any job count).
    std::vector<std::string> payloads = par::forkMap(
        2, jobs, [&](unsigned t) {
            Config c = wcfg;
            if (t == 1) {
                c.set("mnm.use_buffer", "true");
                c.set("mnm.buffer_mb",
                      std::uint64_t(32));   // LLC-sized
            }
            auto r = runExperiment(c, "nvoverlay", "art");
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%llu %llu %llu %llu",
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(r.stats.nvmWriteOps),
                static_cast<unsigned long long>(
                    r.stats.omcBufferHits),
                static_cast<unsigned long long>(
                    r.stats.omcBufferMisses));
            return std::string(buf);
        });
    Cell cells[2];
    for (unsigned t = 0; t < 2; ++t) {
        unsigned long long cyc = 0, ops = 0, h = 0, m = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu %llu %llu",
                        &cyc, &ops, &h, &m) != 4)
            fatal("fig16: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {cyc, ops, h, m};
    }
    const Cell &no_buf = cells[0];
    const Cell &buf = cells[1];

    report.add("art", "no-buffer", "cycles",
               static_cast<double>(no_buf.cycles));
    report.add("art", "no-buffer", "nvm_write_ops",
               static_cast<double>(no_buf.nvmWriteOps));
    table.printRow(
        {"no-buffer",
         TablePrinter::num(static_cast<double>(no_buf.cycles), 0),
         TablePrinter::num(no_buf.nvmWriteOps / 1e6, 2), "-"});

    double hits = static_cast<double>(buf.bufferHits);
    double total = hits + static_cast<double>(buf.bufferMisses);
    report.add("art", "with-buffer", "cycles",
               static_cast<double>(buf.cycles));
    report.add("art", "with-buffer", "nvm_write_ops",
               static_cast<double>(buf.nvmWriteOps));
    report.add("art", "with-buffer", "hit_rate_pct",
               total ? 100.0 * hits / total : 0.0);
    report.add("art", "with-buffer", "norm_cycles",
               static_cast<double>(buf.cycles) / no_buf.cycles);
    table.printRow(
        {"with-buffer",
         TablePrinter::num(static_cast<double>(buf.cycles), 0),
         TablePrinter::num(buf.nvmWriteOps / 1e6, 2),
         TablePrinter::num(total ? 100.0 * hits / total : 0.0, 1)});

    std::printf("\nnormalized cycles: %.2f   write reduction: "
                "%.1f%%\n",
                static_cast<double>(buf.cycles) / no_buf.cycles,
                100.0 * (1.0 - static_cast<double>(buf.nvmWriteOps) /
                                   no_buf.nvmWriteOps));
    report.write();
    return 0;
}
