/**
 * @file
 * Adaptive-policy figure: closed-loop epoch pacing under a
 * phase-shifting workload (docs/POLICY.md).
 *
 * Runs the "phased" workload with the policy engine holding NVM
 * write bandwidth at `nvm.write_bw_budget`, segments the run at
 * phase boundaries, and reports the tail-half mean bandwidth of each
 * phase: the controller must re-converge onto the budget after every
 * demand shift. Rows are exact simulated metrics (deterministic for
 * a fixed config), so the committed baseline gates regressions in
 * the control loop itself.
 *
 * Flags (besides the usual key=value overrides and --json):
 *   --soak N   repeat the phase list N times (long-horizon run; pair
 *              with stats.series_max to bound series memory)
 *   --check    exit 1 unless every phase tail lands within 10% of
 *              the budget (the CI acceptance gate)
 */

#include <cinttypes>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/system.hh"
#include "policy/engine.hh"
#include "workload/phase_shift.hh"

using namespace nvo;

namespace
{

/** One phase segment: [startCycle, endCycle) with byte watermarks
 *  sampled every driver step so the tail half can be re-derived. */
struct Segment
{
    std::string name;
    std::vector<std::uint64_t> cycles;
    std::vector<std::uint64_t> bytes;
};

/** Mean bandwidth (B/Kcycle) of the tail half of a segment. */
std::uint64_t
tailBw(const Segment &seg)
{
    if (seg.cycles.size() < 2)
        return 0;
    std::uint64_t start = seg.cycles.front();
    std::uint64_t end = seg.cycles.back();
    std::uint64_t mid = start + (end - start) / 2;
    std::size_t m = 0;
    while (m + 1 < seg.cycles.size() && seg.cycles[m] < mid)
        ++m;
    std::uint64_t dc = end - seg.cycles[m];
    return dc ? (seg.bytes.back() - seg.bytes[m]) * 1024 / dc : 0;
}

unsigned
extractSoak(int &argc, char **argv)
{
    unsigned soak = 1;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--soak" && i + 1 < argc) {
            soak = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            continue;
        }
        if (arg.rfind("--soak=", 0) == 0) {
            soak = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 0));
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return soak == 0 ? 1 : soak;
}

bool
extractCheck(int &argc, char **argv)
{
    bool check = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--check") {
            check = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return check;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig_adaptive",
                             bench::extractJsonPath(argc, argv));
    unsigned soak = extractSoak(argc, argv);
    bool check = extractCheck(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);

    // The two phases offer distinct bandwidth demand (the second
    // phase shrinks the k-means footprint into cache), so the pacer
    // has to re-converge onto the same budget from both sides.
    if (!cfg.has("wl.phases")) {
        std::string spec = "kmeans:400,kmeans:4000";
        for (unsigned r = 1; r < soak; ++r)
            spec += ",kmeans:400,kmeans:4000";
        cfg.set("wl.phases", spec);
    }
    if (!cfg.has("wl.phase1.kmeans.points"))
        cfg.set("wl.phase1.kmeans.points", std::uint64_t(1) << 14);
    if (!cfg.has("epoch.stores_global"))
        cfg.set("epoch.stores_global", std::uint64_t(8000));
    if (!cfg.has("policy.enabled"))
        cfg.set("policy.enabled", std::uint64_t(1));
    if (!cfg.has("nvm.write_bw_budget"))
        cfg.set("nvm.write_bw_budget", std::uint64_t(7000));
    std::uint64_t budget = cfg.getU64("nvm.write_bw_budget", 7000);
    report.setConfig(cfg);

    System sys(cfg, "nvoverlay", "phased");
    auto *phased = dynamic_cast<PhaseShiftWorkload *>(&sys.workload());
    if (!phased)
        fatal("fig_adaptive: workload is not phased");

    // Fixed-stride driver loop: segment the run wherever the slowest
    // thread crosses a phase boundary. The stride only affects the
    // sampling grid, not the simulation itself.
    constexpr Cycle step = 100'000;
    std::vector<Segment> segs;
    segs.push_back({phased->phaseName(0), {0}, {0}});
    bool done = false;
    while (!done) {
        done = sys.runUntil(sys.now() + step);
        std::uint64_t cyc = sys.now();
        std::uint64_t bytes = sys.stats().totalNvmWriteBytes();
        std::size_t phase = phased->minPhase();
        if (!done && phase >= segs.size() &&
            phase < phased->numPhases()) {
            segs.back().cycles.push_back(cyc);
            segs.back().bytes.push_back(bytes);
            segs.push_back(
                {phased->phaseName(phase), {cyc}, {bytes}});
        } else {
            segs.back().cycles.push_back(cyc);
            segs.back().bytes.push_back(bytes);
        }
    }
    sys.run();

    std::printf("Adaptive epoch pacing — phased workload, budget "
                "%" PRIu64 " B/Kcycle\n",
                budget);
    TablePrinter table({"phase", "workload", "cycles-M", "tail-bw",
                        "err-permille"},
                       13);
    table.printHeader();
    bool within = true;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        const Segment &seg = segs[i];
        std::uint64_t bw = tailBw(seg);
        std::int64_t err =
            budget ? (static_cast<std::int64_t>(bw) -
                      static_cast<std::int64_t>(budget)) *
                         1000 / static_cast<std::int64_t>(budget)
                   : 0;
        std::uint64_t abs_err =
            static_cast<std::uint64_t>(err < 0 ? -err : err);
        if (abs_err > 100)
            within = false;
        std::string cell = "phase" + std::to_string(i);
        report.add(cell, seg.name, "tail_bw_bpkc",
                   static_cast<double>(bw));
        report.add(cell, seg.name, "abs_err_permille",
                   static_cast<double>(abs_err));
        table.printRow(
            {cell, seg.name,
             TablePrinter::num(
                 (seg.cycles.back() - seg.cycles.front()) / 1e6, 2),
             std::to_string(bw),
             std::to_string(err)});
    }
    const policy::PolicyEngine *pe = sys.policyEngine();
    std::printf("policy: %" PRIu64 " evals, %" PRIu64
                " epoch actuations, final len %" PRIu64 "\n",
                pe ? pe->evals() : 0,
                pe ? pe->actuator().epochSets() : 0,
                sys.stats().extra.count("policy_epoch_len")
                    ? sys.stats().extra.at("policy_epoch_len")
                    : 0);
    report.write();
    if (check && !within) {
        std::fprintf(stderr,
                     "fig_adaptive: --check failed: a phase tail "
                     "missed the budget by more than 10%%\n");
        return 1;
    }
    return 0;
}
