/**
 * @file
 * Figure 15: decomposition of NVM write-back triggers on ART —
 * capacity evictions, coherence/log traffic, and tag walks — for
 * PiCL, PiCL-L2, and NVOverlay, with and without the tag walker.
 *
 * Expected shape: PiCL variants lean heavily on the walker (~50% of
 * writes), NVOverlay distributes write backs over coherence and
 * capacity evictions (~90%) with the walker contributing ~10%.
 */

#include "bench_common.hh"

using namespace nvo;

namespace
{

void
printRow(TablePrinter &table, bench::JsonReport &report,
         const std::string &section, const std::string &label,
         const RunStats &st)
{
    auto reason = [&](EvictReason r) {
        return st.evictReason[static_cast<std::size_t>(r)];
    };
    double total = 0;
    for (auto c : st.evictReason)
        total += static_cast<double>(c);
    if (total == 0)
        total = 1;
    double capacity =
        static_cast<double>(reason(EvictReason::Capacity));
    double coh_log =
        static_cast<double>(reason(EvictReason::Coherence)) +
        static_cast<double>(reason(EvictReason::StoreEvict));
    double tag_walk =
        static_cast<double>(reason(EvictReason::TagWalk));
    double flush =
        static_cast<double>(reason(EvictReason::EpochFlush));
    report.add(section, label, "capacity_pct", 100.0 * capacity / total);
    report.add(section, label, "coh_log_pct", 100.0 * coh_log / total);
    report.add(section, label, "tag_walk_pct",
               100.0 * tag_walk / total);
    report.add(section, label, "flush_pct", 100.0 * flush / total);
    auto pct = [&](double v) {
        return TablePrinter::num(100.0 * v / total, 1);
    };
    table.printRow({label, pct(capacity), pct(coh_log), pct(tag_walk),
                    pct(flush)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig15_evict_reasons",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "art");

    std::printf("Figure 15 — Evict-reason decomposition, ART "
                "(%% of write-back triggers)\n");
    TablePrinter table({"config", "capacity", "coh/log", "tag-walk",
                        "flush"},
                       11);

    std::printf("\n(a) with tag walker\n");
    table.printHeader();
    for (const char *scheme : {"picl", "picl-l2", "nvoverlay"}) {
        auto r = runExperiment(wcfg, scheme, "art");
        printRow(table, report, "with_walker", scheme, r.stats);
    }

    std::printf("\n(b) without tag walker\n");
    table.printHeader();
    for (const char *scheme : {"picl", "picl-l2", "nvoverlay"}) {
        Config c = wcfg;
        c.set("picl.walker_enabled", "false");
        c.set("nvo.walker_enabled", "false");
        auto r = runExperiment(c, scheme, "art");
        printRow(table, report, "no_walker", scheme, r.stats);
    }
    report.write();
    return 0;
}
