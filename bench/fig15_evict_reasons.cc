/**
 * @file
 * Figure 15: decomposition of NVM write-back triggers on ART —
 * capacity evictions, coherence/log traffic, and tag walks — for
 * PiCL, PiCL-L2, and NVOverlay, with and without the tag walker.
 *
 * Expected shape: PiCL variants lean heavily on the walker (~50% of
 * writes), NVOverlay distributes write backs over coherence and
 * capacity evictions (~90%) with the walker contributing ~10%.
 */

#include "bench_common.hh"

using namespace nvo;

namespace
{

void
printRow(TablePrinter &table, const std::string &label,
         const RunStats &st)
{
    auto reason = [&](EvictReason r) {
        return st.evictReason[static_cast<std::size_t>(r)];
    };
    double total = 0;
    for (auto c : st.evictReason)
        total += static_cast<double>(c);
    if (total == 0)
        total = 1;
    auto pct = [&](double v) {
        return TablePrinter::num(100.0 * v / total, 1);
    };
    table.printRow(
        {label, pct(static_cast<double>(reason(EvictReason::Capacity))),
         pct(static_cast<double>(reason(EvictReason::Coherence)) +
             static_cast<double>(reason(EvictReason::StoreEvict))),
         pct(static_cast<double>(reason(EvictReason::TagWalk))),
         pct(static_cast<double>(
             reason(EvictReason::EpochFlush)))});
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = bench::benchConfig(argc, argv);
    Config wcfg = bench::forWorkload(cfg, "art");

    std::printf("Figure 15 — Evict-reason decomposition, ART "
                "(%% of write-back triggers)\n");
    TablePrinter table({"config", "capacity", "coh/log", "tag-walk",
                        "flush"},
                       11);

    std::printf("\n(a) with tag walker\n");
    table.printHeader();
    for (const char *scheme : {"picl", "picl-l2", "nvoverlay"}) {
        auto r = runExperiment(wcfg, scheme, "art");
        printRow(table, scheme, r.stats);
    }

    std::printf("\n(b) without tag walker\n");
    table.printHeader();
    for (const char *scheme : {"picl", "picl-l2", "nvoverlay"}) {
        Config c = wcfg;
        c.set("picl.walker_enabled", "false");
        c.set("nvo.walker_enabled", "false");
        auto r = runExperiment(c, scheme, "art");
        printRow(table, scheme, r.stats);
    }
    return 0;
}
