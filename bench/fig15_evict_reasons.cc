/**
 * @file
 * Figure 15: decomposition of NVM write-back triggers on ART —
 * capacity evictions, coherence/log traffic, and tag walks — for
 * PiCL, PiCL-L2, and NVOverlay, with and without the tag walker.
 *
 * Expected shape: PiCL variants lean heavily on the walker (~50% of
 * writes), NVOverlay distributes write backs over coherence and
 * capacity evictions (~90%) with the walker contributing ~10%.
 */

#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

constexpr std::size_t numReasons =
    static_cast<std::size_t>(EvictReason::NumReasons);

void
printRow(TablePrinter &table, bench::JsonReport &report,
         const std::string &section, const std::string &label,
         const std::vector<std::uint64_t> &reasons)
{
    auto reason = [&](EvictReason r) {
        return reasons[static_cast<std::size_t>(r)];
    };
    double total = 0;
    for (auto c : reasons)
        total += static_cast<double>(c);
    if (total == 0)
        total = 1;
    double capacity =
        static_cast<double>(reason(EvictReason::Capacity));
    double coh_log =
        static_cast<double>(reason(EvictReason::Coherence)) +
        static_cast<double>(reason(EvictReason::StoreEvict));
    double tag_walk =
        static_cast<double>(reason(EvictReason::TagWalk));
    double flush =
        static_cast<double>(reason(EvictReason::EpochFlush));
    report.add(section, label, "capacity_pct", 100.0 * capacity / total);
    report.add(section, label, "coh_log_pct", 100.0 * coh_log / total);
    report.add(section, label, "tag_walk_pct",
               100.0 * tag_walk / total);
    report.add(section, label, "flush_pct", 100.0 * flush / total);
    auto pct = [&](double v) {
        return TablePrinter::num(100.0 * v / total, 1);
    };
    table.printRow({label, pct(capacity), pct(coh_log), pct(tag_walk),
                    pct(flush)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig15_evict_reasons",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "art");

    // Cells 0..2: with walker; 3..5: walker disabled. Independent
    // runs, so the matrix fans across --jobs worker processes and
    // merges in cell order (identical output for any job count).
    const std::vector<std::string> schemes = {"picl", "picl-l2",
                                              "nvoverlay"};
    const unsigned numCells =
        static_cast<unsigned>(2 * schemes.size());
    std::vector<std::string> payloads = par::forkMap(
        numCells, jobs, [&](unsigned t) {
            Config c = wcfg;
            if (t >= schemes.size()) {
                c.set("picl.walker_enabled", "false");
                c.set("nvo.walker_enabled", "false");
            }
            auto r = runExperiment(c, schemes[t % schemes.size()],
                                   "art");
            std::ostringstream out;
            for (std::size_t i = 0; i < numReasons; ++i)
                out << (i ? " " : "") << r.stats.evictReason[i];
            return out.str();
        });

    auto parseCell = [&](unsigned t) {
        std::vector<std::uint64_t> reasons;
        std::istringstream in(payloads[t]);
        std::uint64_t v;
        while (in >> v)
            reasons.push_back(v);
        if (reasons.size() != numReasons)
            fatal("fig15: malformed worker payload '%s'",
                  payloads[t].c_str());
        return reasons;
    };

    std::printf("Figure 15 — Evict-reason decomposition, ART "
                "(%% of write-back triggers)\n");
    TablePrinter table({"config", "capacity", "coh/log", "tag-walk",
                        "flush"},
                       11);

    std::printf("\n(a) with tag walker\n");
    table.printHeader();
    for (unsigned i = 0; i < schemes.size(); ++i)
        printRow(table, report, "with_walker", schemes[i],
                 parseCell(i));

    std::printf("\n(b) without tag walker\n");
    table.printHeader();
    for (unsigned i = 0; i < schemes.size(); ++i)
        printRow(table, report, "no_walker", schemes[i],
                 parseCell(static_cast<unsigned>(schemes.size()) + i));
    report.write();
    return 0;
}
