/**
 * @file
 * Ablation (beyond the paper): versioned-domain width. The paper
 * fixes VDs at 2 cores + shared L2 (Sec. III-B); this sweep varies
 * cores-per-VD from 1 to 8 on a sharing-heavy workload to expose the
 * trade-off: small VDs synchronize epochs often (more Lamport
 * advances, more context dumps), large VDs make epoch advance a
 * heavier, less local event and track versions at coarser grain.
 */

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_vd_size",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "vacation");

    std::printf("Ablation — cores per versioned domain (vacation)\n");
    TablePrinter table({"cores/VD", "cycles", "advances", "lamport",
                        "nvm-MB", "rec-epoch"},
                       11);
    table.printHeader();

    for (unsigned width : {1u, 2u, 4u, 8u}) {
        Config c = wcfg;
        c.set("sys.cores_per_vd", std::uint64_t(width));
        System sys(c, "nvoverlay", "vacation");
        sys.run();
        auto &scheme = dynamic_cast<NVOverlayScheme &>(sys.scheme());
        std::string cell = std::to_string(width) + "-cores";
        report.add(cell, "nvoverlay", "cycles",
                   static_cast<double>(sys.stats().cycles));
        report.add(cell, "nvoverlay", "epoch_advances",
                   static_cast<double>(sys.stats().epochAdvances));
        report.add(cell, "nvoverlay", "lamport_advances",
                   static_cast<double>(sys.stats().lamportAdvances));
        report.add(cell, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(
                       sys.stats().totalNvmWriteBytes()));
        report.add(cell, "nvoverlay", "rec_epoch",
                   static_cast<double>(scheme.backend().recEpoch()));
        table.printRow(
            {std::to_string(width),
             std::to_string(sys.stats().cycles),
             std::to_string(sys.stats().epochAdvances),
             std::to_string(sys.stats().lamportAdvances),
             TablePrinter::num(
                 sys.stats().totalNvmWriteBytes() / 1e6, 1),
             std::to_string(scheme.backend().recEpoch())});
    }
    report.write();
    return 0;
}
