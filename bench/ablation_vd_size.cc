/**
 * @file
 * Ablation (beyond the paper): versioned-domain width. The paper
 * fixes VDs at 2 cores + shared L2 (Sec. III-B); this sweep varies
 * cores-per-VD from 1 to 8 on a sharing-heavy workload to expose the
 * trade-off: small VDs synchronize epochs often (more Lamport
 * advances, more context dumps), large VDs make epoch advance a
 * heavier, less local event and track versions at coarser grain.
 */

#include <array>

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

/** One measured cell shipped back from a forkMap worker. */
struct Cell
{
    std::uint64_t cycles = 0;
    std::uint64_t advances = 0;
    std::uint64_t lamport = 0;
    std::uint64_t nvmWriteBytes = 0;
    std::uint64_t recEpoch = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_vd_size",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "vacation");
    const std::array<unsigned, 4> widths = {1u, 2u, 4u, 8u};

    // Each VD width is an independent simulation, so the sweep fans
    // across --jobs worker processes and merges in cell order: same
    // table and JSON rows for any job count.
    std::vector<std::string> payloads = par::forkMap(
        static_cast<unsigned>(widths.size()), jobs, [&](unsigned t) {
            Config c = wcfg;
            c.set("sys.cores_per_vd", std::uint64_t(widths[t]));
            System sys(c, "nvoverlay", "vacation");
            sys.run();
            auto &scheme =
                dynamic_cast<NVOverlayScheme &>(sys.scheme());
            char buf[160];
            std::snprintf(
                buf, sizeof buf, "%llu %llu %llu %llu %llu",
                static_cast<unsigned long long>(sys.stats().cycles),
                static_cast<unsigned long long>(
                    sys.stats().epochAdvances),
                static_cast<unsigned long long>(
                    sys.stats().lamportAdvances),
                static_cast<unsigned long long>(
                    sys.stats().totalNvmWriteBytes()),
                static_cast<unsigned long long>(
                    scheme.backend().recEpoch()));
            return std::string(buf);
        });
    std::array<Cell, 4> cells;
    for (unsigned t = 0; t < widths.size(); ++t) {
        unsigned long long cyc = 0, adv = 0, lam = 0, wr = 0,
                           rec = 0;
        if (std::sscanf(payloads[t].c_str(),
                        "%llu %llu %llu %llu %llu", &cyc, &adv, &lam,
                        &wr, &rec) != 5)
            fatal("ablation_vd: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {cyc, adv, lam, wr, rec};
    }

    std::printf("Ablation — cores per versioned domain (vacation)\n");
    TablePrinter table({"cores/VD", "cycles", "advances", "lamport",
                        "nvm-MB", "rec-epoch"},
                       11);
    table.printHeader();

    for (unsigned t = 0; t < widths.size(); ++t) {
        const Cell &c = cells[t];
        std::string cell = std::to_string(widths[t]) + "-cores";
        report.add(cell, "nvoverlay", "cycles",
                   static_cast<double>(c.cycles));
        report.add(cell, "nvoverlay", "epoch_advances",
                   static_cast<double>(c.advances));
        report.add(cell, "nvoverlay", "lamport_advances",
                   static_cast<double>(c.lamport));
        report.add(cell, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(c.nvmWriteBytes));
        report.add(cell, "nvoverlay", "rec_epoch",
                   static_cast<double>(c.recEpoch));
        table.printRow(
            {std::to_string(widths[t]), std::to_string(c.cycles),
             std::to_string(c.advances), std::to_string(c.lamport),
             TablePrinter::num(c.nvmWriteBytes / 1e6, 1),
             std::to_string(c.recEpoch)});
    }
    report.write();
    return 0;
}
