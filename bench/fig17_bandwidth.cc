/**
 * @file
 * Figure 17: NVM write bandwidth over time on B+Tree, PiCL vs
 * NVOverlay.
 *
 * (a) default epochs: NVOverlay's version coherence amortizes write
 *     backs over execution; PiCL's tag walks surge at epoch
 *     boundaries (higher peaks and larger fluctuation).
 * (b) bursty epochs (time-travel-debugging watch points): three
 *     bursts of 1K / 10K / 100K-store epochs; NVOverlay sustains
 *     lower bandwidth under extremely small epochs.
 */

#include <sstream>

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "baselines/picl.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

constexpr unsigned numBins = 40;

/** The slice of RunStats one bandwidth series needs, shippable
 *  through a forkMap payload. */
struct Series
{
    std::uint64_t cycles = 0;
    std::uint64_t bucketCycles = 1;
    std::vector<std::uint64_t> bins;
};

std::string
packSeries(const RunStats &st)
{
    const auto &bins = st.nvmBandwidth.buckets();
    std::ostringstream os;
    os << st.cycles << ' ' << st.nvmBandwidth.bucketCycles() << ' '
       << bins.size();
    for (auto b : bins)
        os << ' ' << b;
    return os.str();
}

Series
unpackSeries(const std::string &payload)
{
    Series s;
    std::istringstream is(payload);
    std::size_t n = 0;
    if (!(is >> s.cycles >> s.bucketCycles >> n))
        fatal("fig17: malformed worker payload '%s'",
              payload.c_str());
    s.bins.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!(is >> s.bins[i]))
            fatal("fig17: truncated worker payload");
    return s;
}

void
printSeries(const char *label, const Series &st,
            bench::JsonReport &report, const std::string &section)
{
    const auto &bins = st.bins;
    // Trim the post-run shutdown flush: only buckets within the
    // execution window belong to the figure.
    std::size_t n = std::min<std::size_t>(
        bins.size(), st.cycles / st.bucketCycles + 1);
    while (n > 0 && bins[n - 1] == 0)
        --n;
    std::printf("%-10s", label);
    if (n == 0) {
        std::printf(" (no writes)\n");
        return;
    }
    // Re-bin to a fixed number of columns; report GB/s at 3 GHz.
    double cyc_per_bin = static_cast<double>(st.bucketCycles);
    for (unsigned col = 0; col < numBins; ++col) {
        std::size_t lo = col * n / numBins;
        std::size_t hi = (col + 1) * n / numBins;
        if (hi == lo)
            hi = lo + 1;
        double bytes = 0;
        for (std::size_t i = lo; i < hi && i < n; ++i)
            bytes += static_cast<double>(bins[i]);
        double gbps = bytes / ((hi - lo) * cyc_per_bin) * 3e9 / 1e9;
        std::printf(" %4.1f", gbps);
    }
    std::printf("\n");
    // Peak / mean over the execution window only.
    double peak = 0, total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        peak = std::max(peak, static_cast<double>(bins[i]));
        total += static_cast<double>(bins[i]);
    }
    std::printf("%-10s peak %.1f GB/s   mean %.1f GB/s\n", "",
                peak / cyc_per_bin * 3.0,
                total / (n * cyc_per_bin) * 3.0);
    report.add(section, label, "peak_gbps",
               peak / cyc_per_bin * 3.0);
    report.add(section, label, "mean_gbps",
               total / (n * cyc_per_bin) * 3.0);
}

/**
 * Run with three bursty-epoch windows (1K / 10K / 100K-store epochs)
 * interleaved with default-epoch phases: steps 2, 4, and 6 of every
 * 8-step cycle run bursty, mimicking watch points around suspicious
 * code segments.
 */
RunStats
burstyRun(const Config &cfg, const std::string &scheme)
{
    System sys(cfg, scheme, "btree");
    const std::uint64_t burst_stores[3] = {1000, 10000, 100000};
    const Cycle step = 400000;

    auto *nvo = dynamic_cast<NVOverlayScheme *>(&sys.scheme());
    auto *picl = dynamic_cast<PiclScheme *>(&sys.scheme());
    std::uint64_t nvo_dflt = nvo ? nvo->storesPerEpochVdValue() : 0;
    std::uint64_t picl_dflt =
        sys.config().getU64("epoch.stores_refs", 65536);
    // Epoch sizes are nominal store uops; convert like the System.
    std::uint64_t upr = sys.config().getU64("epoch.uops_per_ref", 16);

    unsigned iter = 0;
    while (!sys.done()) {
        unsigned phase = iter % 8;
        int burst = phase == 2 ? 0 : (phase == 4 ? 1 : (phase == 6
                                                            ? 2
                                                            : -1));
        if (nvo) {
            std::uint64_t per_vd =
                burst >= 0 ? std::max<std::uint64_t>(
                                 1, burst_stores[burst] / upr / 8)
                           : nvo_dflt;
            nvo->setStoresPerEpochVd(per_vd);
        } else if (picl) {
            std::uint64_t refs =
                burst >= 0 ? std::max<std::uint64_t>(
                                 1, burst_stores[burst] / upr)
                           : picl_dflt;
            picl->setStoresPerEpoch(refs);
        }
        sys.runUntil(sys.now() + step);
        ++iter;
    }
    return sys.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig17_bandwidth",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "btree");

    // Four independent runs — (a) default epochs, (b) bursty epochs,
    // each for PiCL and NVOverlay — fanned across --jobs workers and
    // merged in cell order: output is byte-identical for any job
    // count.
    std::vector<std::string> payloads =
        par::forkMap(4, jobs, [&](unsigned t) {
            const char *scheme = (t % 2) ? "nvoverlay" : "picl";
            if (t < 2) {
                System sys(wcfg, scheme, "btree");
                sys.run();
                return packSeries(sys.stats());
            }
            return packSeries(burstyRun(wcfg, scheme));
        });

    std::printf("Figure 17 — NVM write bandwidth over time "
                "(B+Tree; %u columns over the run; GB/s)\n\n",
                numBins);

    std::printf("(a) default 1M-uop epochs\n");
    printSeries("picl", unpackSeries(payloads[0]), report,
                "default_epochs");
    printSeries("nvoverlay", unpackSeries(payloads[1]), report,
                "default_epochs");

    std::printf("\n(b) bursty epochs (1K / 10K / 100K-store "
                "watch-point windows)\n");
    printSeries("picl", unpackSeries(payloads[2]), report,
                "bursty_epochs");
    printSeries("nvoverlay", unpackSeries(payloads[3]), report,
                "bursty_epochs");
    report.write();
    return 0;
}
