/**
 * @file
 * Multi-tenant scaling: the KV-service front end swept over tenant
 * count (1, 4, 16, 64) under two policy regimes — "open" (tenancy on,
 * no quotas) and "capped" (per-tenant page-pool quota plus QoS token
 * bucket). Reports cycles, snapshot data bytes, throttle stalls, and
 * quota rejections per cell.
 *
 * Expected shape: open-regime cycles and bytes are flat in tenant
 * count (ASID tagging adds no per-line cost); the capped regime
 * converts co-tenant pressure into that tenant's own stalls and
 * rejections while total data bytes stay within a few percent of the
 * open run (quota enforcement prices tenants out, it never drops
 * versions).
 */

#include <array>

#include "bench_common.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

struct Cell
{
    std::uint64_t cycles = 0;
    std::uint64_t dataBytes = 0;
    std::uint64_t stalls = 0;
    std::uint64_t rejections = 0;
};

std::uint64_t
extraOf(const RunStats &stats, const char *key)
{
    auto it = stats.extra.find(key);
    return it == stats.extra.end() ? 0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig_tenants",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    const std::array<unsigned, 4> tenantCounts = {1, 4, 16, 64};
    const std::array<const char *, 2> regimes = {"open", "capped"};

    // Every (tenant count, regime) cell is an independent simulation:
    // fan across --jobs workers, merge in cell order (byte-identical
    // output for any job count).
    constexpr unsigned numCells = 8;
    std::vector<std::string> payloads = par::forkMap(
        numCells, jobs, [&](unsigned t) {
            const unsigned tenants = tenantCounts[t / regimes.size()];
            const bool capped = (t % regimes.size()) == 1;
            Config wcfg = bench::forWorkload(cfg, "kv_service");
            wcfg.set("tenant.enabled", std::uint64_t(1));
            wcfg.set("wl.kv.tenants", std::uint64_t(tenants));
            if (capped) {
                wcfg.set("tenant.quota_lines", std::uint64_t(600));
                wcfg.set("tenant.qos_bytes_per_kcycle", std::uint64_t(16));
                wcfg.set("tenant.qos_burst_bytes", std::uint64_t(8192));
            }
            auto r = runExperiment(wcfg, "nvoverlay", "kv_service");
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%llu %llu %llu %llu",
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(
                    r.stats.nvmDataBytes()),
                static_cast<unsigned long long>(
                    extraOf(r.stats, "tenant_throttle_stalls")),
                static_cast<unsigned long long>(
                    extraOf(r.stats, "tenant_quota_rejections")));
            return std::string(buf);
        });
    std::array<Cell, numCells> cells;
    for (unsigned t = 0; t < numCells; ++t) {
        unsigned long long cyc = 0, db = 0, st = 0, rj = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu %llu %llu",
                        &cyc, &db, &st, &rj) != 4)
            fatal("fig_tenants: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {cyc, db, st, rj};
    }

    std::printf("Multi-tenant KV service — tenant-count sweep "
                "(ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"tenants", "regime", "cycles", "data-MB",
                        "stalls", "rejects"},
                       11);
    table.printHeader();

    for (unsigned ti = 0; ti < tenantCounts.size(); ++ti) {
        for (unsigned ri = 0; ri < regimes.size(); ++ri) {
            const Cell &c = cells[ti * regimes.size() + ri];
            const std::string row =
                "t" + std::to_string(tenantCounts[ti]);
            report.add(row, regimes[ri], "cycles",
                       static_cast<double>(c.cycles));
            report.add(row, regimes[ri], "nvm_data_bytes",
                       static_cast<double>(c.dataBytes));
            report.add(row, regimes[ri], "throttle_stalls",
                       static_cast<double>(c.stalls));
            report.add(row, regimes[ri], "quota_rejections",
                       static_cast<double>(c.rejections));
            table.printRow(
                {std::to_string(tenantCounts[ti]), regimes[ri],
                 std::to_string(c.cycles),
                 TablePrinter::num(c.dataBytes / 1e6, 2),
                 std::to_string(c.stalls),
                 std::to_string(c.rejections)});
        }
    }
    report.write();
    return 0;
}
