/**
 * @file
 * Figure 14: sensitivity to epoch size on ART — normalized cycles
 * (vs the no-snapshot baseline) and NVM write bytes (vs NVOverlay)
 * for PiCL, PiCL-L2, and NVOverlay at nominal epoch sizes of 500 K,
 * 1 M, 2 M, and 4 M store uops.
 *
 * Expected shape: NVOverlay insensitive (most write backs come from
 * coherence and capacity evictions, not tag walks); PiCL's write
 * amplification drops as epochs grow (fewer walks, fewer log
 * entries).
 */

#include "bench_common.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig14_epoch_sweep",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    const std::uint64_t sizes[] = {500'000, 1'000'000, 2'000'000,
                                   4'000'000};

    std::printf("Figure 14 — Epoch-size sensitivity (ART, "
                "ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"epoch", "picl-cyc", "picl2-cyc", "nvo-cyc",
                        "picl-wr", "picl2-wr", "nvo-GB"},
                       11);
    table.printHeader();

    for (std::uint64_t ep : sizes) {
        Config wcfg = bench::forWorkload(cfg, "art");
        wcfg.set("epoch.stores_global", ep);
        auto base = runExperiment(wcfg, "none", "art");
        auto nvo = runExperiment(wcfg, "nvoverlay", "art");
        auto picl = runExperiment(wcfg, "picl", "art");
        auto picl2 = runExperiment(wcfg, "picl-l2", "art");
        double nb =
            static_cast<double>(nvo.stats.totalNvmWriteBytes());
        std::string cell = std::to_string(ep / 1000) + "K";
        report.add(cell, "picl", "norm_cycles",
                   double(picl.stats.cycles) / base.stats.cycles);
        report.add(cell, "picl-l2", "norm_cycles",
                   double(picl2.stats.cycles) / base.stats.cycles);
        report.add(cell, "nvoverlay", "norm_cycles",
                   double(nvo.stats.cycles) / base.stats.cycles);
        report.add(cell, "picl", "norm_nvm_write_bytes",
                   picl.stats.totalNvmWriteBytes() / nb);
        report.add(cell, "picl-l2", "norm_nvm_write_bytes",
                   picl2.stats.totalNvmWriteBytes() / nb);
        report.add(cell, "nvoverlay", "nvm_write_bytes", nb);
        table.printRow(
            {std::to_string(ep / 1000) + "K",
             TablePrinter::num(
                 double(picl.stats.cycles) / base.stats.cycles, 2),
             TablePrinter::num(
                 double(picl2.stats.cycles) / base.stats.cycles, 2),
             TablePrinter::num(
                 double(nvo.stats.cycles) / base.stats.cycles, 2),
             TablePrinter::num(picl.stats.totalNvmWriteBytes() / nb,
                               2),
             TablePrinter::num(picl2.stats.totalNvmWriteBytes() / nb,
                               2),
             TablePrinter::num(nb / 1e9, 3)});
    }
    report.write();
    return 0;
}
