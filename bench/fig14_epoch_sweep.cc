/**
 * @file
 * Figure 14: sensitivity to epoch size on ART — normalized cycles
 * (vs the no-snapshot baseline) and NVM write bytes (vs NVOverlay)
 * for PiCL, PiCL-L2, and NVOverlay at nominal epoch sizes of 500 K,
 * 1 M, 2 M, and 4 M store uops.
 *
 * Expected shape: NVOverlay insensitive (most write backs come from
 * coherence and capacity evictions, not tag walks); PiCL's write
 * amplification drops as epochs grow (fewer walks, fewer log
 * entries).
 */

#include <array>

#include "bench_common.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

/** One measured cell shipped back from a forkMap worker. */
struct Cell
{
    std::uint64_t cycles = 0;
    std::uint64_t nvmWriteBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig14_epoch_sweep",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    const std::uint64_t sizes[] = {500'000, 1'000'000, 2'000'000,
                                   4'000'000};
    const std::array<const char *, 4> schemes = {
        "none", "nvoverlay", "picl", "picl-l2"};

    // Every (epoch size, scheme) cell is an independent simulation,
    // so the sweep fans across --jobs worker processes and merges in
    // cell order: same table and JSON rows for any job count.
    constexpr unsigned numCells = 16;
    std::vector<std::string> payloads = par::forkMap(
        numCells, jobs, [&](unsigned t) {
            Config wcfg = bench::forWorkload(cfg, "art");
            wcfg.set("epoch.stores_global", sizes[t / schemes.size()]);
            auto r = runExperiment(wcfg, schemes[t % schemes.size()],
                                   "art");
            char buf[64];
            std::snprintf(
                buf, sizeof buf, "%llu %llu",
                static_cast<unsigned long long>(r.stats.cycles),
                static_cast<unsigned long long>(
                    r.stats.totalNvmWriteBytes()));
            return std::string(buf);
        });
    std::array<Cell, numCells> cells;
    for (unsigned t = 0; t < numCells; ++t) {
        unsigned long long cyc = 0, wr = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu", &cyc,
                        &wr) != 2)
            fatal("fig14: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {cyc, wr};
    }

    std::printf("Figure 14 — Epoch-size sensitivity (ART, "
                "ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"epoch", "picl-cyc", "picl2-cyc", "nvo-cyc",
                        "picl-wr", "picl2-wr", "nvo-GB"},
                       11);
    table.printHeader();

    for (unsigned si = 0; si < 4; ++si) {
        std::uint64_t ep = sizes[si];
        const Cell &base = cells[si * 4 + 0];
        const Cell &nvo = cells[si * 4 + 1];
        const Cell &picl = cells[si * 4 + 2];
        const Cell &picl2 = cells[si * 4 + 3];
        double nb = static_cast<double>(nvo.nvmWriteBytes);
        std::string cell = std::to_string(ep / 1000) + "K";
        report.add(cell, "picl", "norm_cycles",
                   double(picl.cycles) / base.cycles);
        report.add(cell, "picl-l2", "norm_cycles",
                   double(picl2.cycles) / base.cycles);
        report.add(cell, "nvoverlay", "norm_cycles",
                   double(nvo.cycles) / base.cycles);
        report.add(cell, "picl", "norm_nvm_write_bytes",
                   picl.nvmWriteBytes / nb);
        report.add(cell, "picl-l2", "norm_nvm_write_bytes",
                   picl2.nvmWriteBytes / nb);
        report.add(cell, "nvoverlay", "nvm_write_bytes", nb);
        table.printRow(
            {std::to_string(ep / 1000) + "K",
             TablePrinter::num(double(picl.cycles) / base.cycles, 2),
             TablePrinter::num(double(picl2.cycles) / base.cycles,
                               2),
             TablePrinter::num(double(nvo.cycles) / base.cycles, 2),
             TablePrinter::num(picl.nvmWriteBytes / nb, 2),
             TablePrinter::num(picl2.nvmWriteBytes / nb, 2),
             TablePrinter::num(nb / 1e9, 3)});
    }
    report.write();
    return 0;
}
