/**
 * @file
 * Figure 13: persistent mapping metadata cost — the Master Mapping
 * Table size as a percentage of the write working set (the bytes it
 * maps). The radix-tree lower bound is 12.5% (one 8-byte leaf entry
 * per 64-byte line); the paper reports 12.8%-15.1% for all workloads
 * except yada (~19.7%, low inner-node occupancy).
 */

#include "bench_common.hh"
#include "harness/system.hh"
#include "nvoverlay/nvoverlay_scheme.hh"
#include "par/procpool.hh"
#include "workload/workload.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig13_metadata",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    // Metadata efficiency depends on page occupancy, which grows with
    // run length; give this (cheap, NVOverlay-only) figure 2x ops and
    // let the backend reclaim stale epochs so host memory stays flat.
    cfg.set("wl.ops", cfg.getU64("wl.ops", bench::defaultOps) * 2);
    cfg.set("mnm.drop_merged_tables", "true");
    cfg.set("mnm.auto_reclaim", "true");
    report.setConfig(cfg);

    std::printf("Figure 13 — Mmaster size as %% of write working set "
                "(ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "mapped-MB", "table-MB", "pct"},
                       12);
    table.printHeader();

    // One independent run per workload: fan across --jobs worker
    // processes and merge in workload order, so the printed table and
    // JSON rows are identical for any job count.
    const auto &wls = paperWorkloads();
    const unsigned numCells = static_cast<unsigned>(wls.size());
    std::vector<std::string> payloads = par::forkMap(
        numCells, jobs, [&](unsigned t) {
            Config wcfg = bench::forWorkload(cfg, wls[t]);
            System sys(wcfg, "nvoverlay", wls[t]);
            sys.run();
            auto &scheme =
                dynamic_cast<NVOverlayScheme &>(sys.scheme());
            auto &be = scheme.backend();
            char buf[64];
            std::snprintf(
                buf, sizeof buf, "%llu %llu",
                static_cast<unsigned long long>(
                    be.masterMappedLinesTotal()),
                static_cast<unsigned long long>(
                    be.masterNodeBytesTotal()));
            return std::string(buf);
        });

    for (unsigned t = 0; t < numCells; ++t) {
        const std::string &wl = wls[t];
        unsigned long long mapped_lines = 0, node_bytes = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu",
                        &mapped_lines, &node_bytes) != 2)
            fatal("fig13: malformed worker payload '%s'",
                  payloads[t].c_str());
        double mapped_bytes =
            static_cast<double>(mapped_lines) * lineBytes;
        double table_bytes = static_cast<double>(node_bytes);
        report.add(wl, "nvoverlay", "mapped_bytes", mapped_bytes);
        report.add(wl, "nvoverlay", "master_table_bytes",
                   table_bytes);
        report.add(wl, "nvoverlay", "master_table_pct",
                   100.0 * table_bytes / mapped_bytes);
        table.printRow(
            {wl, TablePrinter::num(mapped_bytes / 1e6, 2),
             TablePrinter::num(table_bytes / 1e6, 2),
             TablePrinter::num(100.0 * table_bytes / mapped_bytes,
                               1)});
    }
    std::printf("\n(radix lower bound: 12.5%%)\n");
    report.write();
    return 0;
}
