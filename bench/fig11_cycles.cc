/**
 * @file
 * Figure 11: normalized execution cycles for 16-thread runs of all
 * twelve workloads under the six snapshotting schemes, normalized to
 * an ideal system with no snapshotting.
 *
 * Expected shape (paper): SW Logging slowest (per-store persist
 * barriers), SW Shadow next, HW Shadow moderately slower (synchronous
 * mapping-table updates), PiCL / PiCL-L2 / NVOverlay near 1.0 with
 * PiCL-L2 trailing on L2-thrashing workloads.
 *
 * The trailing section reruns ART with Table II's literal per-DIMM
 * bank count (bandwidth-constrained regime): this is where the
 * paper's "NVM bandwidth becomes precious" effect (Sec. IX) puts
 * NVOverlay ahead of the logging schemes.
 */

#include "bench_common.hh"
#include "workload/workload.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig11_cycles",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    const std::vector<std::string> schemes = {
        "swlog", "swshadow", "hwshadow", "picl", "picl-l2",
        "nvoverlay"};

    std::printf("Figure 11 — Normalized Cycles (16 threads, "
                "ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "swlog", "swshadow", "hwshadow",
                        "picl", "picl-l2", "nvoverlay"},
                       11);
    table.printHeader();

    for (const auto &wl : paperWorkloads()) {
        Config wcfg = bench::forWorkload(cfg, wl);
        auto base = runExperiment(wcfg, "none", wl);
        std::vector<std::string> row = {wl};
        for (const auto &scheme : schemes) {
            auto r = runExperiment(wcfg, scheme, wl);
            double norm = static_cast<double>(r.stats.cycles) /
                          base.stats.cycles;
            report.add(wl, scheme, "norm_cycles", norm);
            row.push_back(TablePrinter::num(norm, 2));
        }
        table.printRow(row);
    }

    std::printf("\nBandwidth-constrained regime (nvm.banks=16, "
                "single DIMM, write-dense cores — Sec. IX "
                "crossover: NVOverlay's byte savings become "
                "cycles):\n");
    TablePrinter t2({"workload", "picl", "picl-l2", "nvoverlay"}, 11);
    t2.printHeader();
    for (const auto &wl : {std::string("art"), std::string("btree")}) {
        Config wcfg = bench::forWorkload(cfg, wl);
        wcfg.set("nvm.banks", std::uint64_t(16));
        wcfg.set("wl.gap", std::uint64_t(10));
        auto base = runExperiment(wcfg, "none", wl);
        std::vector<std::string> row = {wl};
        for (const char *scheme : {"picl", "picl-l2", "nvoverlay"}) {
            auto r = runExperiment(wcfg, scheme, wl);
            double norm = static_cast<double>(r.stats.cycles) /
                          base.stats.cycles;
            report.add(wl, scheme, "norm_cycles_bw_constrained",
                       norm);
            row.push_back(TablePrinter::num(norm, 2));
        }
        t2.printRow(row);
    }
    report.write();
    return 0;
}
