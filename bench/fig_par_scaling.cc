/**
 * @file
 * Shard-engine scaling and determinism check (ROADMAP item 1).
 *
 * Runs NVOverlay on one pregen-friendly workload (kmeans, whose
 * generator is confinement-certified) and one generation-serial
 * workload (btree) under the sequential engine and under the shard
 * engine at 1, 2, and 8 shards, then reports:
 *
 *  - norm_cycles: simulated cycles relative to the sequential oracle.
 *    The engine is bit-identical by construction, so every one of
 *    these rows must be exactly 1.0 — they are the rows committed to
 *    BENCH_fig_par_scaling.json, turning the nvo_bench_diff CI gate
 *    into a cross-shard-count determinism check;
 *  - host_speedup: sequential host wall clock over the shard run's.
 *    Host-dependent, so these rows are emitted for information (the
 *    committed baseline deliberately omits them; nvo_bench_diff
 *    reports unknown rows as "fresh" without gating). On a 1-core
 *    host the token-serialized engine adds overhead; the wall-clock
 *    win on real multi-core hosts comes from pre-generation here and
 *    from process fan-out (`--jobs`, nvo_sim `jobs=`) elsewhere.
 */

#include <array>

#include "bench_common.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig_par_scaling",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    const std::array<const char *, 2> workloads = {"kmeans", "btree"};
    const std::array<unsigned, 3> shardCounts = {1, 2, 8};

    std::printf("Shard-engine scaling (nvoverlay, ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "shards", "norm-cyc", "speedup"},
                       11);
    table.printHeader();

    for (const char *workload : workloads) {
        Config wcfg = bench::forWorkload(cfg, workload);
        auto seq = runExperiment(wcfg, "nvoverlay", workload);
        for (unsigned shards : shardCounts) {
            Config pcfg = wcfg;
            pcfg.set("par.shards",
                     static_cast<std::uint64_t>(shards));
            auto par = runExperiment(pcfg, "nvoverlay", workload);
            double norm = static_cast<double>(par.stats.cycles) /
                          static_cast<double>(seq.stats.cycles);
            double speedup =
                par.hostSeconds > 0
                    ? seq.hostSeconds / par.hostSeconds
                    : 0.0;
            std::string scheme =
                "shards" + std::to_string(shards);
            report.add(workload, scheme, "norm_cycles", norm);
            report.add(workload, scheme, "host_speedup", speedup);
            table.printRow({workload, std::to_string(shards),
                            TablePrinter::num(norm, 4),
                            TablePrinter::num(speedup, 2)});
            if (norm != 1.0)
                warn("shard engine diverged from the sequential "
                     "oracle: %s shards=%u norm_cycles=%.6f",
                     workload, shards, norm);
        }
    }
    report.write();
    return 0;
}
