/**
 * @file
 * Table II: print the resolved simulated configuration.
 */

#include <cstdio>

#include "harness/experiment.hh"

int
main()
{
    nvo::Config cfg = nvo::defaultConfig();
    nvo::applyOverrides(cfg);
    std::printf("Table II — Simulated Configuration\n");
    std::printf("%-28s %s\n", "key", "value");
    for (const auto &kv : cfg.dump())
        std::printf("%-28s %s\n", kv.first.c_str(),
                    kv.second.c_str());
    return 0;
}
