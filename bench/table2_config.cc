/**
 * @file
 * Table II: print the resolved simulated configuration.
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/experiment.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("table2_config",
                             bench::extractJsonPath(argc, argv));
    Config cfg = defaultConfig();
    applyOverrides(cfg);
    report.setConfig(cfg);
    std::printf("Table II — Simulated Configuration\n");
    std::printf("%-28s %s\n", "key", "value");
    for (const auto &kv : cfg.dump())
        std::printf("%-28s %s\n", kv.first.c_str(),
                    kv.second.c_str());
    report.add("config", "-", "num_keys",
               static_cast<double>(cfg.dump().size()));
    report.write();
    return 0;
}
