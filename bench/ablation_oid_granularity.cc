/**
 * @file
 * Ablation (paper Sec. V-F, "Runtime DRAM Overhead"): OID tracking
 * granularity in DRAM. A 16-bit OID per 64 B line costs 3.2% of DRAM;
 * sharing one tag per super block of 4 (or 16) lines lowers it below
 * 0.8%, at the cost of conservative epoch observations — a reader of
 * any line in the block observes the block's max OID, triggering
 * extra Lamport advances.
 */

#include "bench_common.hh"
#include "harness/system.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_oid_granularity",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "btree");

    std::printf("Ablation — DRAM OID tracking granularity "
                "(btree)\n");
    TablePrinter table({"lines/tag", "dram-ovh%", "cycles",
                        "advances", "lamport", "nvm-MB"},
                       11);
    table.printHeader();

    for (unsigned gran : {1u, 4u, 16u}) {
        Config c = wcfg;
        c.set("sim.oid_granularity", std::uint64_t(gran));
        System sys(c, "nvoverlay", "btree");
        sys.run();
        std::string cell = std::to_string(gran) + "-lines";
        report.add(cell, "nvoverlay", "cycles",
                   static_cast<double>(sys.stats().cycles));
        report.add(cell, "nvoverlay", "epoch_advances",
                   static_cast<double>(sys.stats().epochAdvances));
        report.add(cell, "nvoverlay", "lamport_advances",
                   static_cast<double>(sys.stats().lamportAdvances));
        report.add(cell, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(
                       sys.stats().totalNvmWriteBytes()));
        table.printRow(
            {std::to_string(gran),
             TablePrinter::num(100.0 * 2 / (64.0 * gran), 2),
             std::to_string(sys.stats().cycles),
             std::to_string(sys.stats().epochAdvances),
             std::to_string(sys.stats().lamportAdvances),
             TablePrinter::num(
                 sys.stats().totalNvmWriteBytes() / 1e6, 1)});
    }
    report.write();
    return 0;
}
