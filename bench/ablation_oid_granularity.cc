/**
 * @file
 * Ablation (paper Sec. V-F, "Runtime DRAM Overhead"): OID tracking
 * granularity in DRAM. A 16-bit OID per 64 B line costs 3.2% of DRAM;
 * sharing one tag per super block of 4 (or 16) lines lowers it below
 * 0.8%, at the cost of conservative epoch observations — a reader of
 * any line in the block observes the block's max OID, triggering
 * extra Lamport advances.
 */

#include <array>

#include "bench_common.hh"
#include "harness/system.hh"
#include "par/procpool.hh"

using namespace nvo;

namespace
{

/** One measured cell shipped back from a forkMap worker. */
struct Cell
{
    std::uint64_t cycles = 0;
    std::uint64_t advances = 0;
    std::uint64_t lamport = 0;
    std::uint64_t nvmWriteBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation_oid_granularity",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);
    Config wcfg = bench::forWorkload(cfg, "btree");
    const std::array<unsigned, 3> grans = {1u, 4u, 16u};

    // Each granularity is an independent simulation, so the sweep
    // fans across --jobs worker processes and merges in cell order:
    // same table and JSON rows for any job count.
    std::vector<std::string> payloads = par::forkMap(
        static_cast<unsigned>(grans.size()), jobs, [&](unsigned t) {
            Config c = wcfg;
            c.set("sim.oid_granularity", std::uint64_t(grans[t]));
            System sys(c, "nvoverlay", "btree");
            sys.run();
            char buf[128];
            std::snprintf(
                buf, sizeof buf, "%llu %llu %llu %llu",
                static_cast<unsigned long long>(sys.stats().cycles),
                static_cast<unsigned long long>(
                    sys.stats().epochAdvances),
                static_cast<unsigned long long>(
                    sys.stats().lamportAdvances),
                static_cast<unsigned long long>(
                    sys.stats().totalNvmWriteBytes()));
            return std::string(buf);
        });
    std::array<Cell, 3> cells;
    for (unsigned t = 0; t < grans.size(); ++t) {
        unsigned long long cyc = 0, adv = 0, lam = 0, wr = 0;
        if (std::sscanf(payloads[t].c_str(), "%llu %llu %llu %llu",
                        &cyc, &adv, &lam, &wr) != 4)
            fatal("ablation_oid: malformed worker payload '%s'",
                  payloads[t].c_str());
        cells[t] = {cyc, adv, lam, wr};
    }

    std::printf("Ablation — DRAM OID tracking granularity "
                "(btree)\n");
    TablePrinter table({"lines/tag", "dram-ovh%", "cycles",
                        "advances", "lamport", "nvm-MB"},
                       11);
    table.printHeader();

    for (unsigned t = 0; t < grans.size(); ++t) {
        unsigned gran = grans[t];
        const Cell &c = cells[t];
        std::string cell = std::to_string(gran) + "-lines";
        report.add(cell, "nvoverlay", "cycles",
                   static_cast<double>(c.cycles));
        report.add(cell, "nvoverlay", "epoch_advances",
                   static_cast<double>(c.advances));
        report.add(cell, "nvoverlay", "lamport_advances",
                   static_cast<double>(c.lamport));
        report.add(cell, "nvoverlay", "nvm_write_bytes",
                   static_cast<double>(c.nvmWriteBytes));
        table.printRow(
            {std::to_string(gran),
             TablePrinter::num(100.0 * 2 / (64.0 * gran), 2),
             std::to_string(c.cycles),
             std::to_string(c.advances),
             std::to_string(c.lamport),
             TablePrinter::num(c.nvmWriteBytes / 1e6, 1)});
    }
    report.write();
    return 0;
}
