/**
 * @file
 * Figure 12: NVM write bytes (data + log + mapping metadata),
 * normalized to NVOverlay, for the schemes the paper plots
 * (HW Shadow, PiCL, PiCL-L2, NVOverlay).
 *
 * Expected shape: HW Shadow below 1.0 (each dirty line exactly once
 * per epoch; far below on L2-thrashing kmeans), PiCL ~1.4-1.9x,
 * PiCL-L2 highest (smaller on-chip version working set).
 */

#include "bench_common.hh"
#include "workload/workload.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig12_writeamp",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    std::printf("Figure 12 — NVM Write Bytes normalized to NVOverlay "
                "(ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "hwshadow", "picl", "picl-l2",
                        "nvoverlay", "nvo-GB"},
                       11);
    table.printHeader();

    for (const auto &wl : paperWorkloads()) {
        Config wcfg = bench::forWorkload(cfg, wl);
        auto nvo = runExperiment(wcfg, "nvoverlay", wl);
        double base =
            static_cast<double>(nvo.stats.totalNvmWriteBytes());
        std::vector<std::string> row = {wl};
        for (const char *scheme : {"hwshadow", "picl", "picl-l2"}) {
            auto r = runExperiment(wcfg, scheme, wl);
            double norm = r.stats.totalNvmWriteBytes() / base;
            report.add(wl, scheme, "norm_nvm_write_bytes", norm);
            row.push_back(TablePrinter::num(norm, 2));
        }
        report.add(wl, "nvoverlay", "norm_nvm_write_bytes", 1.0);
        report.add(wl, "nvoverlay", "nvm_write_bytes", base);
        row.push_back("1.00");
        row.push_back(TablePrinter::num(base / 1e9, 3));
        table.printRow(row);
    }
    std::printf("\n(nvo-GB: absolute NVOverlay write volume; the "
                "paper reports a 29%%-47%% reduction vs logging, "
                "i.e., PiCL columns of 1.4x-1.9x.)\n");
    report.write();
    return 0;
}
