/**
 * @file
 * Figure 12: NVM write bytes (data + log + mapping metadata),
 * normalized to NVOverlay, for the schemes the paper plots
 * (HW Shadow, PiCL, PiCL-L2, NVOverlay).
 *
 * Expected shape: HW Shadow below 1.0 (each dirty line exactly once
 * per epoch; far below on L2-thrashing kmeans), PiCL ~1.4-1.9x,
 * PiCL-L2 highest (smaller on-chip version working set).
 */

#include <array>

#include "bench_common.hh"
#include "par/procpool.hh"
#include "workload/workload.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig12_writeamp",
                             bench::extractJsonPath(argc, argv));
    unsigned jobs = bench::extractJobs(argc, argv);
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    // Every (workload, scheme) cell is an independent simulation:
    // fan the 12x4 grid across --jobs worker processes and merge in
    // cell order, so the table and JSON rows are byte-identical for
    // every job count.
    const std::array<const char *, 4> schemes = {
        "nvoverlay", "hwshadow", "picl", "picl-l2"};
    const auto &wls = paperWorkloads();
    const unsigned numCells =
        static_cast<unsigned>(wls.size() * schemes.size());
    std::vector<std::string> payloads = par::forkMap(
        numCells, jobs, [&](unsigned t) {
            const std::string &wl = wls[t / schemes.size()];
            Config wcfg = bench::forWorkload(cfg, wl);
            auto r = runExperiment(
                wcfg, schemes[t % schemes.size()], wl);
            return std::to_string(r.stats.totalNvmWriteBytes());
        });

    std::printf("Figure 12 — NVM Write Bytes normalized to NVOverlay "
                "(ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "hwshadow", "picl", "picl-l2",
                        "nvoverlay", "nvo-GB"},
                       11);
    table.printHeader();

    for (std::size_t wi = 0; wi < wls.size(); ++wi) {
        const std::string &wl = wls[wi];
        std::array<std::uint64_t, 4> bytes{};
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const std::string &pay =
                payloads[wi * schemes.size() + si];
            char *end = nullptr;
            bytes[si] = std::strtoull(pay.c_str(), &end, 10);
            if (end == pay.c_str())
                fatal("fig12: malformed worker payload '%s'",
                      pay.c_str());
        }
        double base = static_cast<double>(bytes[0]);
        std::vector<std::string> row = {wl};
        for (std::size_t si = 1; si < schemes.size(); ++si) {
            double norm = bytes[si] / base;
            report.add(wl, schemes[si], "norm_nvm_write_bytes", norm);
            row.push_back(TablePrinter::num(norm, 2));
        }
        report.add(wl, "nvoverlay", "norm_nvm_write_bytes", 1.0);
        report.add(wl, "nvoverlay", "nvm_write_bytes", base);
        row.push_back("1.00");
        row.push_back(TablePrinter::num(base / 1e9, 3));
        table.printRow(row);
    }
    std::printf("\n(nvo-GB: absolute NVOverlay write volume; the "
                "paper reports a 29%%-47%% reduction vs logging, "
                "i.e., PiCL columns of 1.4x-1.9x.)\n");
    report.write();
    return 0;
}
