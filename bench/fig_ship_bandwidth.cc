/**
 * @file
 * Replication shipping bandwidth vs. epoch length.
 *
 * The remote-replication usage model (paper Sec. V-E) ships each
 * epoch's delta to a standby as it becomes recoverable, so the wire
 * cost tracks the *unique lines per epoch*, not the raw store
 * stream. Longer epochs absorb more overwrites into one delta (fewer
 * shipped bytes per store) but raise the lag between primary and
 * standby; this bench quantifies that trade-off: per epoch length,
 * the shipped delta bytes per epoch, the wire amplification from
 * framing + retransmits, and the shipped-bytes-per-store
 * coalescing ratio.
 */

#include "bench_common.hh"

using namespace nvo;

int
main(int argc, char **argv)
{
    bench::JsonReport report("fig_ship_bandwidth",
                             bench::extractJsonPath(argc, argv));
    Config cfg = bench::benchConfig(argc, argv);
    report.setConfig(cfg);

    const std::vector<std::uint64_t> epochLens = {2000, 8000, 32000,
                                                  128000};
    const std::vector<std::string> workloads = {"btree",
                                                "hashtable"};

    std::printf("Replication shipping cost vs. epoch length "
                "(ops/thread=%llu)\n",
                static_cast<unsigned long long>(
                    cfg.getU64("wl.ops", bench::defaultOps)));
    TablePrinter table({"workload", "epoch_stores", "epochs",
                        "delta_kb/epoch", "bytes/store", "wire_amp"},
                       14);
    table.printHeader();

    for (const auto &wl : workloads) {
        for (std::uint64_t len : epochLens) {
            Config wcfg = bench::forWorkload(cfg, wl);
            wcfg.set("epoch.stores_global", len);
            wcfg.set("repl.enabled", "true");
            auto r = runExperiment(wcfg, "nvoverlay", wl);
            const auto &rs = r.stats.repl;
            double epochs =
                static_cast<double>(rs.epochsShipped
                                        ? rs.epochsShipped
                                        : 1);
            double delta_per_epoch = rs.deltaBytes / epochs;
            double bytes_per_store =
                r.stats.stores
                    ? static_cast<double>(rs.deltaBytes) /
                          r.stats.stores
                    : 0.0;
            double wire_amp =
                rs.deltaBytes
                    ? static_cast<double>(rs.wireBytes) /
                          rs.deltaBytes
                    : 0.0;
            report.add(wl, "nvoverlay-e" + std::to_string(len),
                       "delta_bytes_per_epoch", delta_per_epoch);
            report.add(wl, "nvoverlay-e" + std::to_string(len),
                       "ship_bytes_per_store", bytes_per_store);
            report.add(wl, "nvoverlay-e" + std::to_string(len),
                       "wire_amplification", wire_amp);
            table.printRow(
                {wl, std::to_string(len),
                 std::to_string(rs.epochsShipped),
                 TablePrinter::num(delta_per_epoch / 1024.0, 1),
                 TablePrinter::num(bytes_per_store, 2),
                 TablePrinter::num(wire_amp, 2)});
        }
    }
    std::printf("\nLonger epochs coalesce overwrites into one "
                "shipped version (bytes/store falls); wire "
                "amplification is framing overhead — near-constant "
                "on a clean link.\n");
    report.write();
    return 0;
}
